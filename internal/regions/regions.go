// Package regions implements the RegLess compiler (paper §4): it slices a
// kernel into regions (Algorithm 1), classifies each region's registers as
// inputs, interiors, and outputs, computes per-bank capacity annotations,
// and emits the runtime annotations the hardware follows — preloads (with
// invalidating-read flags), cache invalidations, and per-instruction
// erase/evict last-use flags (Figure 6).
//
// A region is a contiguous instruction range inside one basic block;
// regions never span block boundaries, which keeps the hardware's register
// management oblivious of control flow (§4.1). Region boundaries are
// chosen to maximize interior registers (values whose whole lifetime sits
// inside one region and therefore never touch the memory hierarchy) and to
// separate long-latency global loads from their first uses.
package regions

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/cfg"
	"repro/internal/isa"
)

// NumBanks is the number of OSU banks a region's registers are spread
// across; bank of register r for warp w is (w + r) mod NumBanks (§5.2).
const NumBanks = 8

// Config bounds region sizes to the operand staging unit geometry.
type Config struct {
	// MaxRegsPerRegion caps a region's maximum concurrent live
	// registers, so one region cannot monopolize the OSU (Alg. 1 l.18).
	MaxRegsPerRegion int
	// BankLines is the OSU line count per bank; a region's per-bank
	// usage must fit (Alg. 1 l.20).
	BankLines int
	// MinRegionInsns is the minimum split-point distance from the
	// region start (48 bytes = 6 instructions in the paper, Alg. 1
	// l.31), avoiding degenerately small regions.
	MinRegionInsns int
}

// DefaultConfig matches the paper's 512-entry-per-SM design point: four
// shards of 128 entries = 8 banks x 16 lines.
func DefaultConfig() Config {
	return Config{MaxRegsPerRegion: 32, BankLines: 16, MinRegionInsns: 6}
}

// Preload is one input-register fetch issued before a region activates.
type Preload struct {
	Reg isa.Reg
	// Invalidate marks an invalidating read: this preload is statically
	// the register's last read, so the backing-store copy is deleted as
	// it is fetched (§4.3).
	Invalidate bool
}

// Region is one compiler-created region with its hardware annotations.
type Region struct {
	ID    int
	Block int
	// Start and End delimit the instruction range [Start, End) within
	// the block.
	Start, End int
	// StartGI/EndGI are the same bounds as global instruction indexes.
	StartGI, EndGI int

	// Inputs are registers live into the region that the region touches;
	// they must be present in the OSU before activation.
	Inputs []isa.Reg
	// Outputs are registers defined in the region and live out of it.
	Outputs []isa.Reg
	// Interior registers' whole lifetimes sit inside the region; they
	// are never transferred to or from memory.
	Interior []isa.Reg

	// MaxLive is the region's OSU reservation: the maximum number of
	// concurrently-present registers (Figure 19's "mean live").
	MaxLive int
	// BankUsage[b] is the maximum concurrent registers in bank b
	// assuming warp 0; the hardware rotates by warp ID.
	BankUsage [NumBanks]int

	// Preloads list the input fetches (Figure 19's "preloads").
	Preloads []Preload
	// CacheInvalidations are registers whose backing-store copies are
	// deleted when this region starts: control flow has made them dead.
	CacheInvalidations []isa.Reg
	// EraseAt maps a global instruction index to interior registers
	// whose last use it is; their OSU lines free immediately.
	EraseAt map[int][]isa.Reg
	// EvictAt maps a global instruction index to input/output registers
	// whose last in-region use it is; their OSU lines become evictable.
	EvictAt map[int][]isa.Reg

	// MetaInsns is the instruction-stream overhead of this region's
	// annotations (filled in by package metadata via SetMetaCost).
	MetaInsns int
}

// NumInsns returns the region's static instruction count.
func (r *Region) NumInsns() int { return r.End - r.Start }

// Compiled is the full compiler output for one kernel.
type Compiled struct {
	Kernel *isa.Kernel
	G      *cfg.Graph
	Lv     *cfg.Liveness
	Cfg    Config

	Regions []*Region
	// RegionOf maps a global instruction index to its region ID (-1 for
	// unreachable code).
	RegionOf []int
	// CrossRegs marks registers that are an input or output of at least
	// one region — the only registers that can ever reside in the
	// memory hierarchy.
	CrossRegs *bitvec.Set
}

// RegionAt returns the region containing global instruction index gi, or
// nil for unreachable code.
func (c *Compiled) RegionAt(gi int) *Region {
	id := c.RegionOf[gi]
	if id < 0 {
		return nil
	}
	return c.Regions[id]
}

// Compile runs the full RegLess compiler pipeline on a kernel whose
// registers are already architecturally allocated.
func Compile(k *isa.Kernel, cfgOpts Config) (*Compiled, error) {
	if cfgOpts.MaxRegsPerRegion <= 0 || cfgOpts.BankLines <= 0 {
		return nil, fmt.Errorf("regions: invalid config %+v", cfgOpts)
	}
	g := cfg.New(k)
	lv := cfg.ComputeLiveness(g)
	c := &Compiled{
		Kernel:   k,
		G:        g,
		Lv:       lv,
		Cfg:      cfgOpts,
		RegionOf: make([]int, g.NumInsns()),
	}
	for i := range c.RegionOf {
		c.RegionOf[i] = -1
	}
	c.createRegions()
	c.classifyAll()
	c.annotate()
	return c, nil
}

// createRegions implements Algorithm 1 over every reachable basic block.
func (c *Compiled) createRegions() {
	type span struct {
		block, start, end int
	}
	var worklist []span
	for _, b := range c.G.RPO {
		blk := c.Kernel.Blocks[b]
		worklist = append(worklist, span{b, 0, len(blk.Insns)})
	}
	// Process in order, but splits re-examine the tail (Alg. 1 l.10).
	for i := 0; i < len(worklist); i++ {
		s := worklist[i]
		for !c.isValid(s.block, s.start, s.end) {
			split := c.findSplitPoint(s.block, s.start, s.end)
			c.appendRegion(s.block, s.start, split)
			s.start = split
		}
		c.appendRegion(s.block, s.start, s.end)
	}
	// Renumber regions in layout order so RegionOf is monotone.
	sort.Slice(c.Regions, func(a, b int) bool {
		return c.Regions[a].StartGI < c.Regions[b].StartGI
	})
	for id, r := range c.Regions {
		r.ID = id
		for gi := r.StartGI; gi < r.EndGI; gi++ {
			c.RegionOf[gi] = id
		}
	}
}

func (c *Compiled) appendRegion(block, start, end int) {
	r := &Region{
		Block:   block,
		Start:   start,
		End:     end,
		StartGI: c.G.GlobalIndex(isa.PC{Block: block, Index: start}),
		EndGI:   c.G.GlobalIndex(isa.PC{Block: block, Index: start}) + (end - start),
		EraseAt: map[int][]isa.Reg{},
		EvictAt: map[int][]isa.Reg{},
	}
	c.Regions = append(c.Regions, r)
}

// isValid implements Algorithm 1's IsValid for the candidate range
// [start, end) of a block. Single-instruction regions are always valid to
// guarantee progress.
func (c *Compiled) isValid(block, start, end int) bool {
	if end-start <= 1 {
		return true
	}
	maxLive, bank := c.localPressure(block, start, end)
	if maxLive > c.Cfg.MaxRegsPerRegion {
		return false
	}
	for _, u := range bank {
		if u > c.Cfg.BankLines {
			return false
		}
	}
	if c.containsLoadUse(block, start, end) {
		return false
	}
	if c.containsMidBarrier(block, start, end) {
		return false
	}
	return true
}

// containsMidBarrier reports whether the range holds a barrier that is not
// its last instruction. Regions end at barriers so that a warp waiting at
// one holds no staging-unit reservation — otherwise barrier-waiting warps
// could starve the very warps their CTA is waiting for (deadlock at small
// OSU capacities).
func (c *Compiled) containsMidBarrier(block, start, end int) bool {
	insns := c.Kernel.Blocks[block].Insns
	for i := start; i < end-1; i++ {
		if insns[i].Op == isa.OpBAR {
			return true
		}
	}
	return false
}

// containsLoadUse reports whether the range holds a global load and a
// later read of its destination (before a hard redefinition).
func (c *Compiled) containsLoadUse(block, start, end int) bool {
	insns := c.Kernel.Blocks[block].Insns
	for i := start; i < end; i++ {
		in := &insns[i]
		if !in.Op.IsGlobalLoad() {
			continue
		}
		d := in.Dst
		for j := i + 1; j < end; j++ {
			jn := &insns[j]
			for _, s := range jn.SrcRegs() {
				if s == d {
					return true
				}
			}
			gj := c.G.GlobalIndex(isa.PC{Block: block, Index: j})
			if jn.Op.HasDst() && jn.Dst == d && !c.Lv.SoftDef[gj] {
				break // hard redefinition; old load value gone
			}
		}
	}
	return false
}

// findSplitPoint implements Algorithm 1's FindSplitPoint for an invalid
// range, returning the split index s (first region = [start, s)).
func (c *Compiled) findSplitPoint(block, start, end int) int {
	// upperBound: the largest s such that [start, s) is still valid.
	upper := start + 1
	for s := start + 2; s < end; s++ {
		if !c.isValid(block, start, s) {
			break
		}
		upper = s
	}

	// lowerBound: split minimizing co-located (load, first-use) pairs.
	lower := start + 1
	bestPairs := c.pairCount(block, start, lower, end)
	for s := start + 2; s <= upper; s++ {
		if p := c.pairCount(block, start, s, end); p < bestPairs {
			bestPairs = p
			lower = s
		}
	}
	// Enforce the minimum region size where possible (Alg. 1 l.31).
	if min := start + c.Cfg.MinRegionInsns; lower < min {
		lower = min
	}
	if lower > upper {
		lower = upper
	}

	// Final choice: fewest combined inputs+outputs across both halves.
	best := lower
	bestCost := c.splitCost(block, start, best, end)
	for s := lower + 1; s <= upper; s++ {
		if cost := c.splitCost(block, start, s, end); cost < bestCost {
			bestCost = cost
			best = s
		}
	}
	return best
}

// pairCount counts (global load, first use) pairs that remain co-located
// in either half when splitting [start, end) at s.
func (c *Compiled) pairCount(block, start, s, end int) int {
	return c.pairsWithin(block, start, s) + c.pairsWithin(block, s, end)
}

func (c *Compiled) pairsWithin(block, a, b int) int {
	insns := c.Kernel.Blocks[block].Insns
	n := 0
	for i := a; i < b; i++ {
		in := &insns[i]
		if !in.Op.IsGlobalLoad() {
			continue
		}
		d := in.Dst
	scan:
		for j := i + 1; j < b; j++ {
			for _, s := range insns[j].SrcRegs() {
				if s == d {
					n++
					break scan
				}
			}
		}
	}
	return n
}

// splitCost is the combined number of input and output registers of the
// two halves produced by splitting at s.
func (c *Compiled) splitCost(block, start, s, end int) int {
	i1, o1 := c.inputsOutputs(block, start, s)
	i2, o2 := c.inputsOutputs(block, s, end)
	return i1 + o1 + i2 + o2
}
