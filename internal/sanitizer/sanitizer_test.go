package sanitizer

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestNilSanitizerIsNoOp(t *testing.T) {
	var s *Sanitizer
	s.Register("x", func() error { return errors.New("boom") })
	if s.Enabled() {
		t.Error("nil sanitizer enabled")
	}
	if d := s.Check(0); d != nil {
		t.Errorf("nil sanitizer diagnosed: %v", d)
	}
}

func TestCheckFirstViolationWins(t *testing.T) {
	s := New()
	if s.Enabled() {
		t.Error("empty sanitizer enabled")
	}
	calls := 0
	s.Register("ok", func() error { calls++; return nil })
	s.Register("first", func() error { return errors.New("broke A") })
	s.Register("second", func() error { return errors.New("broke B") })
	if !s.Enabled() {
		t.Error("registered sanitizer not enabled")
	}
	d := s.Check(42)
	if d == nil {
		t.Fatal("violation not diagnosed")
	}
	if d.Component != "first" || d.Violation != "broke A" || d.Cycle != 42 || d.Warp != -1 {
		t.Errorf("diagnostic = %+v", d)
	}
	if calls != 1 {
		t.Errorf("passing check ran %d times", calls)
	}
}

func TestEveryThrottles(t *testing.T) {
	s := New()
	s.Every = 100
	ran := 0
	s.Register("counter", func() error { ran++; return nil })
	for c := uint64(0); c < 1000; c++ {
		s.Check(c)
	}
	if ran != 10 {
		t.Errorf("Every=100 ran %d checks over 1000 cycles, want 10", ran)
	}
}

func TestTransitionCheckerLegalPath(t *testing.T) {
	tc := NewTransitionChecker(2)
	// Warp 0 cycles through the full lifecycle twice, then exits.
	for i := 0; i < 2; i++ {
		for _, to := range []uint8{PhasePreloading, PhaseActive, PhaseDraining, PhaseInactive} {
			tc.Observe(0, to)
		}
	}
	tc.Observe(0, PhaseActive) // inactive -> active (no pending inputs)
	tc.Observe(0, PhaseFinished)
	// Warp 1 exits straight from preloading.
	tc.Observe(1, PhasePreloading)
	tc.Observe(1, PhaseFinished)
	if err := tc.Err(); err != nil {
		t.Fatalf("legal path flagged: %v", err)
	}
}

func TestTransitionCheckerIllegalEdges(t *testing.T) {
	cases := []struct {
		name string
		path []uint8
	}{
		{"inactive->draining", []uint8{PhaseDraining}},
		{"self-transition", []uint8{PhasePreloading, PhasePreloading}},
		{"active->preloading", []uint8{PhaseActive, PhasePreloading}},
		{"finished->active", []uint8{PhaseFinished, PhaseActive}},
		{"draining->active", []uint8{PhaseActive, PhaseDraining, PhaseActive}},
		{"out-of-range", []uint8{numPhases + 3}},
	}
	for _, c := range cases {
		tc := NewTransitionChecker(1)
		for _, to := range c.path {
			tc.Observe(0, to)
		}
		if tc.Err() == nil {
			t.Errorf("%s: illegal path not latched", c.name)
		}
	}
}

func TestTransitionCheckerLatchesFirst(t *testing.T) {
	tc := NewTransitionChecker(1)
	tc.Observe(0, PhaseDraining) // illegal
	first := tc.Err()
	tc.Observe(0, PhaseFinished) // would be fine, must not clear
	if tc.Err() != first {
		t.Error("latched violation changed")
	}
	if !strings.Contains(first.Error(), "inactive -> draining") {
		t.Errorf("violation text: %v", first)
	}
	// Out-of-range warp IDs are ignored, not panics.
	tc2 := NewTransitionChecker(1)
	tc2.Observe(-1, PhaseActive)
	tc2.Observe(5, PhaseActive)
	if tc2.Err() != nil {
		t.Errorf("out-of-range warp latched: %v", tc2.Err())
	}
}

func TestDiagnosticErrorAndRender(t *testing.T) {
	d := &Diagnostic{
		Component: "osu/s2",
		Violation: "line w3 r5 in bank 1, want bank 0",
		Cycle:     1234,
		Warp:      3,
		Kernel:    "nw",
		Provider:  "regless",
		FaultsApplied: []string{
			"osu-tag: shard 2 line w3 r4 -> r5 at cycle 1200",
		},
		Warps: []WarpDiag{
			{ID: 0, Group: 0, Finished: true},
			{ID: 3, Group: 1, State: "active", Region: 7, PendingWrites: 2, LastIssue: 1230},
		},
		Stalls:  []StallCount{{Reason: "scoreboard", Warps: 3}},
		Metrics: []Metric{{Name: "sim/cycles", Value: 1234}},
		Events:  []EventRecord{{Cycle: 1233, Kind: "issue", Warp: 3, Detail: "group 1"}},
	}
	var err error = d
	if !strings.Contains(err.Error(), "osu/s2 at cycle 1234") {
		t.Errorf("Error() = %q", err.Error())
	}
	r := d.Render()
	for _, want := range []string{
		"component  osu/s2", "violation  line w3", "warp       3",
		"kernel     nw (provider regless)", "fault      osu-tag",
		"scoreboard:3", "w3", "region 7", "pending=2", "issue",
	} {
		if !strings.Contains(r, want) {
			t.Errorf("Render() missing %q:\n%s", want, r)
		}
	}
	if strings.Contains(r, "w0") && strings.Contains(r, "group 0 ") {
		t.Error("finished warp rendered in unfinished list")
	}
}

func TestRenderClipsUnfinishedWarps(t *testing.T) {
	d := &Diagnostic{Component: "sim/watchdog", Violation: "stuck", Warp: -1}
	for i := 0; i < 40; i++ {
		d.Warps = append(d.Warps, WarpDiag{ID: i})
	}
	r := d.Render()
	if !strings.Contains(r, "...") {
		t.Error("40 unfinished warps rendered without clipping")
	}
	if strings.Contains(r, "w20 ") {
		t.Error("warp past the clip limit rendered")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	d := &Diagnostic{
		Component: "cm/s0/transitions",
		Violation: "warp 4: illegal capacity transition active -> preloading",
		Cycle:     99,
		Warp:      4,
		Metrics:   []Metric{{Name: "a", Value: 1}},
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("bundle is not valid JSON: %v\n%s", err, buf.String())
	}
	if back.Component != d.Component || back.Cycle != d.Cycle || back.Warp != d.Warp {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

func TestDiagnosticAsError(t *testing.T) {
	// The CLI unwraps with errors.As through fmt-wrapped chains.
	d := &Diagnostic{Component: "sim/maxcycles", Violation: "exceeded", Cycle: 10, Warp: -1}
	wrapped := fmt.Errorf("suite: bench nw: %w", d)
	var got *Diagnostic
	if !errors.As(wrapped, &got) || got != d {
		t.Error("errors.As failed to unwrap Diagnostic")
	}
}
