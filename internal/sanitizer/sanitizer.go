// Package sanitizer is the opt-in cycle-level invariant checker and the
// structured Diagnostic bundle every abnormal termination produces.
//
// Layers register named check functions (OSU line-population partition,
// CM reservation bounds, capacity-state transition legality, staged
// counts vs region annotations, scoreboard/warp-state legality); the
// simulator calls Check once per cycle and converts the first violation
// into a Diagnostic carrying the machine context a designer needs:
// last-K recorded events, a metrics snapshot, per-warp capacity states,
// and the attributed stall breakdown. A nil *Sanitizer is a valid
// disabled checker (one branch per cycle), matching the metrics/events
// idiom.
//
// The package deliberately depends only on the standard library: the
// layers under test (cm, osu, sim, core) import it for the Diagnostic
// type, so it must sit below all of them.
package sanitizer

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// CheckFunc verifies one invariant; nil means it holds.
type CheckFunc func() error

type check struct {
	component string
	fn        CheckFunc
}

// Sanitizer runs registered invariant checks each cycle.
type Sanitizer struct {
	// Every throttles checking to every Nth cycle (default 1: every
	// cycle). Violations between checked cycles surface at the next
	// checked one.
	Every uint64

	checks []check
}

// New builds an every-cycle sanitizer.
func New() *Sanitizer { return &Sanitizer{Every: 1} }

// Register adds an invariant under a component name ("osu/s2",
// "cm/s0/transitions", "sim/warps"); the name becomes the Diagnostic's
// Component on violation. Checks run in registration order.
func (s *Sanitizer) Register(component string, fn CheckFunc) {
	if s == nil {
		return
	}
	s.checks = append(s.checks, check{component, fn})
}

// Enabled reports whether any check is registered. Nil-safe.
func (s *Sanitizer) Enabled() bool { return s != nil && len(s.checks) > 0 }

// Check runs every registered invariant and returns a Diagnostic for the
// first violation, or nil. Nil-safe: a nil receiver always passes.
func (s *Sanitizer) Check(cycle uint64) *Diagnostic {
	if s == nil {
		return nil
	}
	if s.Every > 1 && cycle%s.Every != 0 {
		return nil
	}
	for _, c := range s.checks {
		if err := c.fn(); err != nil {
			return &Diagnostic{
				Component: c.component,
				Violation: err.Error(),
				Cycle:     cycle,
				Warp:      -1,
			}
		}
	}
	return nil
}

// Capacity-manager phases for transition-legality checking. The values
// mirror internal/cm's State ordering (and events.Phase); sanitizer
// redeclares them so it stays a leaf package.
const (
	PhaseInactive uint8 = iota
	PhasePreloading
	PhaseActive
	PhaseDraining
	PhaseFinished
	numPhases
)

func phaseName(p uint8) string {
	switch p {
	case PhaseInactive:
		return "inactive"
	case PhasePreloading:
		return "preloading"
	case PhaseActive:
		return "active"
	case PhaseDraining:
		return "draining"
	case PhaseFinished:
		return "finished"
	default:
		return fmt.Sprintf("phase(%d)", p)
	}
}

// legalTransitions[from][to] encodes the capacity state machine of
// paper §5.1: Inactive -> Preloading (inputs pending) or Active
// (immediate), Preloading -> Active, Active -> Draining, Draining ->
// Inactive; any live state may go straight to Finished (warp exit).
var legalTransitions = [numPhases][numPhases]bool{
	PhaseInactive:   {PhasePreloading: true, PhaseActive: true, PhaseFinished: true},
	PhasePreloading: {PhaseActive: true, PhaseFinished: true},
	PhaseActive:     {PhaseDraining: true, PhaseFinished: true},
	PhaseDraining:   {PhaseInactive: true, PhaseFinished: true},
	PhaseFinished:   {},
}

// TransitionChecker validates the per-warp capacity state machine from a
// stream of Observe calls (wired into the CM's OnTransition hook, which
// reports only the entered state — the checker remembers each warp's
// previous one). Violations latch into Err, which is registered as an
// ordinary sanitizer check: hooks have no error return, so the per-cycle
// sweep surfaces the latched violation.
type TransitionChecker struct {
	state []uint8
	err   error
}

// NewTransitionChecker tracks n warps, all starting Inactive.
func NewTransitionChecker(n int) *TransitionChecker {
	return &TransitionChecker{state: make([]uint8, n)}
}

// Observe records warp w entering state `to`, latching a violation on an
// illegal edge. Self-transitions are illegal too: the CM never
// re-announces a state.
func (t *TransitionChecker) Observe(w int, to uint8) {
	if t.err != nil || w < 0 || w >= len(t.state) {
		return
	}
	from := t.state[w]
	if to >= numPhases || !legalTransitions[from][to] {
		t.err = fmt.Errorf("warp %d: illegal capacity transition %s -> %s",
			w, phaseName(from), phaseName(to))
		return
	}
	t.state[w] = to
}

// Err returns the latched violation (a sanitizer CheckFunc).
func (t *TransitionChecker) Err() error { return t.err }

// Metric is one named counter value captured at diagnosis time.
type Metric struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// WarpDiag is one warp's state in the bundle.
type WarpDiag struct {
	ID            int    `json:"id"`
	Group         int    `json:"group"`
	State         string `json:"state,omitempty"` // capacity state (RegLess)
	Region        int    `json:"region"`          // -1: none
	Finished      bool   `json:"finished"`
	AtBarrier     bool   `json:"at_barrier"`
	PendingWrites int    `json:"pending_writes"`
	LastIssue     uint64 `json:"last_issue"`
}

// StallCount is one reason's share of the attributed stall breakdown.
type StallCount struct {
	Reason string `json:"reason"`
	Warps  int    `json:"warps"`
}

// EventRecord is one recorded event rendered for the bundle.
type EventRecord struct {
	Cycle  uint64 `json:"cycle"`
	Kind   string `json:"kind"`
	Warp   int    `json:"warp"`
	Detail string `json:"detail,omitempty"`
}

// Diagnostic is the structured bundle produced when an invariant breaks,
// the forward-progress watchdog trips, or MaxCycles aborts the run. It
// is an error: layers return it up through sim.Run so experiments and
// the CLI render or serialize it instead of crashing.
type Diagnostic struct {
	// Component names the faulted unit ("osu/s2", "core/s0/drain",
	// "sim/watchdog", "sim/maxcycles").
	Component string `json:"component"`
	// Violation describes the broken invariant or trip condition.
	Violation string `json:"violation"`
	// Cycle is when the violation was detected.
	Cycle uint64 `json:"cycle"`
	// Warp is the implicated warp (-1 when not warp-specific).
	Warp int `json:"warp"`

	// Kernel and Provider identify the run.
	Kernel   string `json:"kernel,omitempty"`
	Provider string `json:"provider,omitempty"`

	// FaultsApplied lists injected faults that fired before detection
	// (empty outside fault-injection runs).
	FaultsApplied []string `json:"faults_applied,omitempty"`

	// RequestID ties a service-surfaced diagnostic back to the HTTP
	// request that triggered the simulation (empty outside regless
	// serve; stamped on a per-request copy, never the cached value).
	RequestID string `json:"request_id,omitempty"`

	// Warps is the per-warp machine state (capacity phase, barrier,
	// pending writes) at detection.
	Warps []WarpDiag `json:"warps,omitempty"`
	// Stalls attributes each unfinished warp to its current stall
	// reason (the same classification as the event analyzer).
	Stalls []StallCount `json:"stalls,omitempty"`
	// Metrics snapshots every registered counter.
	Metrics []Metric `json:"metrics,omitempty"`
	// Events holds the last recorded events before detection (empty
	// when no recorder was attached).
	Events []EventRecord `json:"events,omitempty"`
}

// Error implements error with a one-line summary; Render gives the full
// bundle.
func (d *Diagnostic) Error() string {
	return fmt.Sprintf("diagnostic: %s at cycle %d: %s", d.Component, d.Cycle, d.Violation)
}

// Brief is the bare one-line form for health reports and log lines:
// component, cycle, and violation without the "diagnostic:" prefix or the
// full bundle.
func (d *Diagnostic) Brief() string {
	return fmt.Sprintf("%s at cycle %d: %s", d.Component, d.Cycle, d.Violation)
}

// Render formats the full bundle for terminals.
func (d *Diagnostic) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "component  %s\n", d.Component)
	fmt.Fprintf(&b, "violation  %s\n", d.Violation)
	fmt.Fprintf(&b, "cycle      %d\n", d.Cycle)
	if d.Warp >= 0 {
		fmt.Fprintf(&b, "warp       %d\n", d.Warp)
	}
	if d.Kernel != "" {
		fmt.Fprintf(&b, "kernel     %s (provider %s)\n", d.Kernel, d.Provider)
	}
	for _, f := range d.FaultsApplied {
		fmt.Fprintf(&b, "fault      %s\n", f)
	}
	if len(d.Stalls) > 0 {
		b.WriteString("stalls    ")
		for _, s := range d.Stalls {
			fmt.Fprintf(&b, " %s:%d", s.Reason, s.Warps)
		}
		b.WriteByte('\n')
	}
	if len(d.Warps) > 0 {
		fmt.Fprintf(&b, "warps      %d tracked; unfinished:\n", len(d.Warps))
		shown := 0
		for _, w := range d.Warps {
			if w.Finished {
				continue
			}
			if shown == 16 {
				b.WriteString("  ...\n")
				break
			}
			shown++
			fmt.Fprintf(&b, "  w%-3d group %d", w.ID, w.Group)
			if w.State != "" {
				fmt.Fprintf(&b, " %-10s region %d", w.State, w.Region)
			}
			if w.AtBarrier {
				b.WriteString(" at-barrier")
			}
			if w.PendingWrites > 0 {
				fmt.Fprintf(&b, " pending=%d", w.PendingWrites)
			}
			fmt.Fprintf(&b, " last-issue=%d\n", w.LastIssue)
		}
	}
	if len(d.Events) > 0 {
		fmt.Fprintf(&b, "events     last %d recorded:\n", len(d.Events))
		for _, e := range d.Events {
			fmt.Fprintf(&b, "  c%-8d %-13s w%-3d %s\n", e.Cycle, e.Kind, e.Warp, e.Detail)
		}
	}
	if len(d.Metrics) > 0 {
		fmt.Fprintf(&b, "metrics    %d counters captured (see -diag-out JSON)\n", len(d.Metrics))
	}
	return b.String()
}

// WriteJSON serializes the full bundle (the -diag-out file).
func (d *Diagnostic) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
