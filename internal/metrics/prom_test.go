package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("serve/hits")
	c.Add(7)
	g := uint64(3)
	r.Gauge("serve/queue_depth", func() uint64 { return g })
	h := r.Histogram("serve/span_us", 10, 100)
	h.Observe(5)   // le_10
	h.Observe(50)  // le_100
	h.Observe(500) // inf

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r, "regless"); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := strings.Join([]string{
		"# TYPE regless_serve_hits_total counter",
		"regless_serve_hits_total 7",
		"# TYPE regless_serve_queue_depth gauge",
		"regless_serve_queue_depth 3",
		"# TYPE regless_serve_span_us histogram",
		`regless_serve_span_us_bucket{le="10"} 1`,
		`regless_serve_span_us_bucket{le="100"} 2`,
		`regless_serve_span_us_bucket{le="+Inf"} 3`,
		"regless_serve_span_us_sum 555",
		"regless_serve_span_us_count 3",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil, "x"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

func TestHistogramSumCell(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, 8)
	h.Observe(0)
	h.Observe(9)
	if v, ok := r.Value("lat/sum"); !ok || v != 9 {
		t.Fatalf("lat/sum = %d,%v want 9", v, ok)
	}
}

func TestAtomicHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.AtomicHistogram("load/latency_us", 10, 100)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(uint64(j % 200))
			}
		}()
	}
	wg.Wait()
	var total uint64
	for _, name := range []string{"load/latency_us/le_10", "load/latency_us/le_100", "load/latency_us/inf"} {
		v, ok := r.Value(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		total += v
	}
	if total != 8000 {
		t.Fatalf("observations = %d, want 8000", total)
	}
}

func TestAppendWindowMatchesJSONL(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	var got Window
	r.SetSink(sinkFunc(func(w Window) {
		got = Window{Index: w.Index, Start: w.Start, End: w.End}
		got.Names = append([]string(nil), w.Names...)
		got.Kinds = append([]Kind(nil), w.Kinds...)
		got.Values = append([]uint64(nil), w.Values...)
	}))
	c.Add(4)
	r.CloseWindow(100)
	line := AppendWindow(nil, []Label{String("component", "serve")}, got)
	want := `{"component":"serve","window":0,"start":0,"end":100,"counters":{"a":4},"gauges":{}}` + "\n"
	if string(line) != want {
		t.Fatalf("AppendWindow = %q, want %q", line, want)
	}
}
