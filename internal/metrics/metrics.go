// Package metrics is the simulator's observability substrate: a
// lightweight registry of named event counters, gauges, and histograms
// with a snapshot/diff API and per-window delta export.
//
// Design constraints (this package sits under every hot simulation loop):
//
//   - Counting is allocation-free. A Counter is one pointer; Inc/Add are a
//     nil check plus an increment. Registration (done once, at simulation
//     construction) is the only place that allocates.
//   - The zero value of every instrument is a safe no-op, so code compiled
//     with instrumentation pays exactly one predictable branch when the
//     owning registry is absent or the handle was never registered.
//   - A Registry belongs to one simulation and is driven from a single
//     goroutine (the simulator is deterministic and single-threaded per
//     SM); cross-simulation aggregation happens at the export layer
//     (JSONLWriter serializes emits from concurrent simulations).
//
// Existing statistics structs integrate without touching their hot paths:
// Bind registers a view over an external *uint64 field, so `stats.X++`
// keeps compiling to a bare increment while the registry can still
// snapshot, diff, and export the cell. Gauges sample a closure only at
// snapshot/window boundaries, which makes occupancy-style metrics (queue
// depths, cache residency) free during simulation.
package metrics

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Kind classifies a registered cell for export.
type Kind uint8

const (
	// KindCounter cells accumulate monotonically; windows export deltas.
	KindCounter Kind = iota
	// KindGauge cells are sampled at snapshot time; windows export the
	// sampled value, not a delta.
	KindGauge
)

type cell struct {
	name string
	kind Kind
	// val backs counters (owned or bound); nil for gauges.
	val *uint64
	// sample backs gauges.
	sample func() uint64
	// atomic marks cells incremented from concurrent goroutines
	// (AtomicCounter); registry reads then use atomic loads.
	atomic bool
}

// load reads a counter cell, honoring the atomic discipline of cells that
// are counted from concurrent goroutines.
func (c *cell) load() uint64 {
	if c.atomic {
		return atomic.LoadUint64(c.val)
	}
	return *c.val
}

// Registry is an ordered collection of named instruments. Instruments are
// registered once (names must be unique) and then counted against with no
// further lookups. The registry is not goroutine-safe: one registry per
// simulation, driven from the simulation's goroutine.
type Registry struct {
	cells []cell
	index map[string]int
	// hists records each histogram's shape (bounds + first cell index) so
	// exporters that need family structure (Prometheus text format) can
	// reassemble buckets from the flat cell list.
	hists []histMeta

	sink     Sink
	window   int
	winStart uint64
	// last holds each counter cell's value at the previous window close,
	// in cell order; scratch is the reused delta buffer handed to sinks;
	// winNames/winKinds are the frozen header built at SetSink.
	last     []uint64
	scratch  []uint64
	winNames []string
	winKinds []Kind
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]int{}}
}

func (r *Registry) register(c cell) int {
	if _, dup := r.index[c.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", c.name))
	}
	if r.last != nil {
		panic(fmt.Sprintf("metrics: registration of %q after SetSink", c.name))
	}
	r.index[c.name] = len(r.cells)
	r.cells = append(r.cells, c)
	return len(r.cells) - 1
}

// Counter registers (or re-acquires) an owned counter cell. Registering a
// name twice panics; use Lookup for re-acquisition if needed. A nil
// registry returns the zero Counter, whose methods are no-ops.
func (r *Registry) Counter(name string) Counter {
	if r == nil {
		return Counter{}
	}
	v := new(uint64)
	r.register(cell{name: name, kind: KindCounter, val: v})
	return Counter{v: v}
}

// AtomicCounter registers a counter cell whose increments are safe from
// concurrent goroutines. Simulations never need this (one registry per
// simulation, one goroutine); the serving layer does — request handlers
// and pool workers count hits, misses, and admissions concurrently while
// a metrics loop snapshots and closes windows. Reads of an atomic cell
// (Value, Snapshot, CloseWindow) use atomic loads, so counting never
// races export.
func (r *Registry) AtomicCounter(name string) AtomicCounter {
	if r == nil {
		return AtomicCounter{}
	}
	v := new(uint64)
	r.register(cell{name: name, kind: KindCounter, val: v, atomic: true})
	return AtomicCounter{v: v}
}

// Bind registers a counter view over an externally owned cell (a field of
// an existing statistics struct). The owner keeps incrementing the field
// directly — zero added cost on its hot path — while the registry gains
// snapshot/export visibility. A nil registry ignores the call.
func (r *Registry) Bind(name string, v *uint64) {
	if r == nil {
		return
	}
	r.register(cell{name: name, kind: KindCounter, val: v})
}

// Gauge registers a sampled instrument: fn runs at snapshot and window
// boundaries only, never during counting. A nil registry ignores the call.
func (r *Registry) Gauge(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.register(cell{name: name, kind: KindGauge, sample: fn})
}

// histMeta is one histogram's registration record: its family name, the
// bucket bounds, the index of its first cell (buckets, then the overflow
// cell, then the sum cell, contiguously), and the counting discipline.
type histMeta struct {
	name   string
	bounds []uint64
	first  int
	atomic bool
}

// Histogram registers a bucketed counter under name: one cell per bucket
// (`name/le_B` for each bound, `name/inf` for the overflow, `name/sum`
// for the running total of observed values), so histogram buckets ride
// through snapshots and windows like any counter. Bounds must be strictly
// increasing. A nil registry returns the zero Histogram.
func (r *Registry) Histogram(name string, bounds ...uint64) Histogram {
	return r.histogram(name, bounds, false)
}

// AtomicHistogram registers a histogram whose observations are safe from
// concurrent goroutines — the histogram counterpart of AtomicCounter,
// for serving-layer latency distributions observed from handlers and
// pool workers while the metrics loop exports.
func (r *Registry) AtomicHistogram(name string, bounds ...uint64) Histogram {
	return r.histogram(name, bounds, true)
}

func (r *Registry) histogram(name string, bounds []uint64, atomicCells bool) Histogram {
	if r == nil {
		return Histogram{}
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not increasing", name))
		}
	}
	first := len(r.cells)
	h := Histogram{bounds: bounds, cells: make([]*uint64, len(bounds)+1), atomic: atomicCells}
	for i, b := range bounds {
		h.cells[i] = new(uint64)
		r.register(cell{name: fmt.Sprintf("%s/le_%d", name, b), kind: KindCounter, val: h.cells[i], atomic: atomicCells})
	}
	h.cells[len(bounds)] = new(uint64)
	r.register(cell{name: name + "/inf", kind: KindCounter, val: h.cells[len(bounds)], atomic: atomicCells})
	h.sum = new(uint64)
	r.register(cell{name: name + "/sum", kind: KindCounter, val: h.sum, atomic: atomicCells})
	r.hists = append(r.hists, histMeta{name: name, bounds: bounds, first: first, atomic: atomicCells})
	return h
}

// Counter is a handle to one registered cell. The zero value is a no-op:
// instrumented code pays one predictable branch when disabled.
type Counter struct {
	v *uint64
}

// Inc adds one.
func (c Counter) Inc() {
	if c.v != nil {
		*c.v++
	}
}

// Add adds n.
func (c Counter) Add(n uint64) {
	if c.v != nil {
		*c.v += n
	}
}

// Value returns the current count (0 for the zero Counter).
func (c Counter) Value() uint64 {
	if c.v == nil {
		return 0
	}
	return *c.v
}

// AtomicCounter is a handle to one registered atomic cell. The zero value
// is a no-op, matching Counter.
type AtomicCounter struct {
	v *uint64
}

// Inc atomically adds one.
func (c AtomicCounter) Inc() {
	if c.v != nil {
		atomic.AddUint64(c.v, 1)
	}
}

// Add atomically adds n.
func (c AtomicCounter) Add(n uint64) {
	if c.v != nil {
		atomic.AddUint64(c.v, n)
	}
}

// Value atomically reads the current count (0 for the zero AtomicCounter).
func (c AtomicCounter) Value() uint64 {
	if c.v == nil {
		return 0
	}
	return atomic.LoadUint64(c.v)
}

// Histogram is a bucketed counter handle. The zero value is a no-op.
type Histogram struct {
	bounds []uint64
	cells  []*uint64
	sum    *uint64
	atomic bool
}

// Observe records one sample of v into its bucket and the running sum.
func (h Histogram) Observe(v uint64) {
	if h.cells == nil {
		return
	}
	i := 0
	for ; i < len(h.bounds); i++ {
		if v <= h.bounds[i] {
			break
		}
	}
	if h.atomic {
		atomic.AddUint64(h.cells[i], 1)
		atomic.AddUint64(h.sum, v)
		return
	}
	*h.cells[i]++
	*h.sum += v
}

// Sample is one named value in a snapshot.
type Sample struct {
	Name  string
	Kind  Kind
	Value uint64
}

// Len returns the number of registered cells (histograms count one per
// bucket).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.cells)
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.cells))
	for i, c := range r.cells {
		out[i] = c.name
	}
	return out
}

// Value returns the current value of the named cell and whether it exists.
func (r *Registry) Value(name string) (uint64, bool) {
	if r == nil {
		return 0, false
	}
	i, ok := r.index[name]
	if !ok {
		return 0, false
	}
	return r.read(i), true
}

func (r *Registry) read(i int) uint64 {
	c := &r.cells[i]
	if c.kind == KindGauge {
		return c.sample()
	}
	return c.load()
}

// Snapshot captures every cell (gauges are sampled now) in registration
// order.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	out := make([]Sample, len(r.cells))
	for i, c := range r.cells {
		out[i] = Sample{Name: c.name, Kind: c.kind, Value: r.read(i)}
	}
	return out
}

// Diff returns cur minus prev by name: counters subtract (missing names in
// prev count from zero); gauges keep cur's sampled value. The result is
// sorted by name. Snapshots from different registries may be diffed as
// long as the shared names refer to the same instruments.
func Diff(cur, prev []Sample) []Sample {
	base := map[string]uint64{}
	for _, s := range prev {
		base[s.Name] = s.Value
	}
	out := make([]Sample, 0, len(cur))
	for _, s := range cur {
		d := s
		if s.Kind == KindCounter {
			d.Value = s.Value - base[s.Name]
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Window is one closed export interval. Names/Kinds/Values alias
// registry-owned buffers that are reused on the next close: sinks must
// consume (or copy) them before returning.
type Window struct {
	// Index is the 0-based window ordinal within this registry.
	Index int
	// Start and End delimit the interval in simulation cycles,
	// half-open as (Start, End].
	Start, End uint64
	Names      []string
	Kinds      []Kind
	// Values holds counter deltas since the previous close and sampled
	// gauge values, in registration order.
	Values []uint64
}

// Sink receives closed windows.
type Sink interface {
	Emit(w Window)
}

// SetSink installs the per-window export destination. Call before the
// first CloseWindow; installing a sink arms window tracking from the
// current cell values.
func (r *Registry) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.sink = s
	r.last = make([]uint64, len(r.cells))
	r.winNames = make([]string, len(r.cells))
	r.winKinds = make([]Kind, len(r.cells))
	for i := range r.cells {
		c := &r.cells[i]
		if c.kind == KindCounter {
			r.last[i] = c.load()
		}
		r.winNames[i] = c.name
		r.winKinds[i] = c.kind
	}
	r.scratch = make([]uint64, len(r.cells))
}

// HasSink reports whether a sink is installed — the simulator's one-branch
// guard around window bookkeeping.
func (r *Registry) HasSink() bool { return r != nil && r.sink != nil }

// CloseWindow emits the interval ending at cycle end to the sink and
// starts the next window. Without a sink it is a no-op. Empty intervals
// (end == previous close) are skipped.
func (r *Registry) CloseWindow(end uint64) {
	if r == nil || r.sink == nil || end == r.winStart {
		return
	}
	for i := range r.cells {
		c := &r.cells[i]
		if c.kind == KindGauge {
			r.scratch[i] = c.sample()
			continue
		}
		v := c.load()
		r.scratch[i] = v - r.last[i]
		r.last[i] = v
	}
	r.sink.Emit(Window{
		Index:  r.window,
		Start:  r.winStart,
		End:    end,
		Names:  r.winNames,
		Kinds:  r.winKinds,
		Values: r.scratch,
	})
	r.window++
	r.winStart = end
}
