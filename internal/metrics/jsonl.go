package metrics

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// JSONLWriter serializes windows from any number of concurrently running
// simulations onto one line-oriented stream. Each Emit writes exactly one
// JSON object terminated by a newline, so interleaving across simulations
// never corrupts a line; a single mutex orders the writes.
//
// One record looks like
//
//	{"bench":"bfs","scheme":"regless","capacity":512,"window":3,
//	 "start":300,"end":400,
//	 "counters":{"provider/struct_reads":812,...},
//	 "gauges":{"mem/mshr_occupancy":2,...}}
//
// Counter deltas of zero are elided to keep the stream compact; gauges are
// always written (a zero occupancy is information).
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// Flush drains buffered lines to the underlying writer and returns the
// first write error encountered by any Emit.
func (j *JSONLWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Run returns a Sink labeling every window with one simulation's identity.
// Label values are JSON-encoded as strings for texts and bare numbers for
// ints; keys and values must not need escaping beyond strconv.Quote.
func (j *JSONLWriter) Run(labels ...Label) Sink {
	return &runSink{j: j, labels: labels}
}

// Label is one key/value pair attached to a run's records.
type Label struct {
	Key string
	// Str is used unless IsInt; then Int is written as a bare number.
	Str   string
	Int   int
	IsInt bool
}

// String builds a text label.
func String(k, v string) Label { return Label{Key: k, Str: v} }

// Int builds a numeric label.
func Int(k string, v int) Label { return Label{Key: k, Int: v, IsInt: true} }

type runSink struct {
	j      *JSONLWriter
	labels []Label
	buf    []byte // reused line buffer (guarded by j.mu during Emit)
}

// Emit implements Sink.
func (s *runSink) Emit(w Window) {
	s.j.mu.Lock()
	defer s.j.mu.Unlock()
	s.buf = AppendWindow(s.buf[:0], s.labels, w)
	if _, err := s.j.w.Write(s.buf); err != nil && s.j.err == nil {
		s.j.err = err
	}
}

// AppendWindow appends the window (with its labels) to b as exactly one
// newline-terminated JSON object — the record format documented on
// JSONLWriter, exposed so other exporters (the serve SSE metrics stream)
// emit byte-compatible lines.
func AppendWindow(b []byte, labels []Label, w Window) []byte {
	b = append(b, '{')
	for _, l := range labels {
		b = appendKey(b, l.Key)
		if l.IsInt {
			b = strconv.AppendInt(b, int64(l.Int), 10)
		} else {
			b = strconv.AppendQuote(b, l.Str)
		}
		b = append(b, ',')
	}
	b = appendKey(b, "window")
	b = strconv.AppendInt(b, int64(w.Index), 10)
	b = append(b, ',')
	b = appendKey(b, "start")
	b = strconv.AppendUint(b, w.Start, 10)
	b = append(b, ',')
	b = appendKey(b, "end")
	b = strconv.AppendUint(b, w.End, 10)

	b = append(b, ',')
	b = appendKey(b, "counters")
	b = append(b, '{')
	first := true
	for i, n := range w.Names {
		if w.Kinds[i] != KindCounter || w.Values[i] == 0 {
			continue
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = appendKey(b, n)
		b = strconv.AppendUint(b, w.Values[i], 10)
	}
	b = append(b, '}')

	b = append(b, ',')
	b = appendKey(b, "gauges")
	b = append(b, '{')
	first = true
	for i, n := range w.Names {
		if w.Kinds[i] != KindGauge {
			continue
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = appendKey(b, n)
		b = strconv.AppendUint(b, w.Values[i], 10)
	}
	return append(b, "}}\n"...)
}

func appendKey(b []byte, k string) []byte {
	b = strconv.AppendQuote(b, k)
	return append(b, ':')
}
