package metrics

import (
	"sync"
	"sync/atomic"
	"testing"
)

// collectSink records the final value of one named cell across windows.
type collectSink struct {
	name  string
	total uint64
}

func (c *collectSink) Emit(w Window) {
	for i, n := range w.Names {
		if n == c.name && w.Kinds[i] == KindCounter {
			c.total += w.Values[i]
		}
	}
}

// TestAtomicCounterConcurrent exercises the serving-layer contract: many
// goroutines counting against one AtomicCounter while another goroutine
// snapshots and closes windows. Run under -race this doubles as the
// data-race proof; the arithmetic check proves no increment is lost and
// the window deltas sum to the final value.
func TestAtomicCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.AtomicCounter("serve/test")
	var gaugeVal atomic.Int64
	r.Gauge("serve/gauge", func() uint64 { return uint64(gaugeVal.Load()) })
	sink := &collectSink{name: "serve/test"}
	r.SetSink(sink)

	const workers = 8
	const perWorker = 5000
	stop := make(chan struct{})
	var snapDone sync.WaitGroup
	snapDone.Add(1)
	go func() {
		defer snapDone.Done()
		end := uint64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.Snapshot()
			r.Value("serve/test")
			r.CloseWindow(end)
			end++
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%10 == 0 {
					c.Add(2)
					gaugeVal.Add(1)
				} else {
					c.Inc()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	snapDone.Wait()

	// 500 of each worker's 5000 iterations Add(2), the rest Inc.
	const want = workers * (perWorker + perWorker/10)
	if got := c.Value(); got != want {
		t.Fatalf("Value = %d, want %d (lost increments)", got, want)
	}
	// Close the final window: deltas across all windows must sum to the
	// total — nothing double-counted, nothing dropped at window edges.
	r.CloseWindow(1 << 60)
	if sink.total != want {
		t.Fatalf("window deltas sum to %d, want %d", sink.total, want)
	}
}

// TestAtomicCounterZeroValue: the zero handle is a no-op like Counter.
func TestAtomicCounterZeroValue(t *testing.T) {
	var c AtomicCounter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("zero AtomicCounter counted")
	}
	var r *Registry
	if h := r.AtomicCounter("x"); h.Value() != 0 {
		t.Fatal("nil registry returned a live handle")
	}
}
