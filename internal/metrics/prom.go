package metrics

import (
	"bufio"
	"io"
	"strconv"
	"sync/atomic"
)

// WritePrometheus renders a snapshot of the registry in the Prometheus
// text exposition format (version 0.0.4), the /metricsz?format=prom
// payload. The mapping is frozen — scrapers may depend on it:
//
//   - Metric name: namespace + "_" + registry name with every byte
//     outside [a-zA-Z0-9_] rewritten to "_" (so "serve/http_requests"
//     under namespace "regless" is "regless_serve_http_requests").
//   - Counters render with a "_total" suffix, gauges under the mapped
//     name unchanged.
//   - Histograms render as one family: cumulative "_bucket" samples with
//     le labels (the registry's per-bucket cells are disjoint counts, so
//     this writer accumulates them), a "_sum" sample, and a "_count"
//     sample equal to the +Inf bucket.
//
// Cells belonging to a histogram are emitted only through their family,
// never as scalar counters. Output order is registration order.
func WritePrometheus(w io.Writer, r *Registry, namespace string) error {
	bw := bufio.NewWriter(w)
	if r == nil {
		return bw.Flush()
	}
	// Map each histogram's first cell index to its meta; mark every cell
	// a histogram owns (buckets + inf + sum) as covered.
	starts := make(map[int]*histMeta, len(r.hists))
	covered := make(map[int]bool)
	for i := range r.hists {
		m := &r.hists[i]
		starts[m.first] = m
		for c := m.first; c < m.first+len(m.bounds)+2; c++ {
			covered[c] = true
		}
	}
	var scratch []byte
	for i := range r.cells {
		if m, ok := starts[i]; ok {
			writePromHistogram(bw, r, m, namespace, &scratch)
			continue
		}
		if covered[i] {
			continue
		}
		c := &r.cells[i]
		name := promName(namespace, c.name)
		if c.kind == KindGauge {
			bw.WriteString("# TYPE " + name + " gauge\n")
			bw.WriteString(name)
			bw.WriteByte(' ')
			scratch = strconv.AppendUint(scratch[:0], c.sample(), 10)
			bw.Write(scratch)
			bw.WriteByte('\n')
			continue
		}
		bw.WriteString("# TYPE " + name + "_total counter\n")
		bw.WriteString(name + "_total ")
		scratch = strconv.AppendUint(scratch[:0], c.load(), 10)
		bw.Write(scratch)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

func writePromHistogram(bw *bufio.Writer, r *Registry, m *histMeta, namespace string, scratch *[]byte) {
	name := promName(namespace, m.name)
	bw.WriteString("# TYPE " + name + " histogram\n")
	load := func(i int) uint64 {
		v := r.cells[i].val
		if m.atomic {
			return atomic.LoadUint64(v)
		}
		return *v
	}
	var cum uint64
	for bi, b := range m.bounds {
		cum += load(m.first + bi)
		bw.WriteString(name + "_bucket{le=\"")
		*scratch = strconv.AppendUint((*scratch)[:0], b, 10)
		bw.Write(*scratch)
		bw.WriteString("\"} ")
		*scratch = strconv.AppendUint((*scratch)[:0], cum, 10)
		bw.Write(*scratch)
		bw.WriteByte('\n')
	}
	cum += load(m.first + len(m.bounds))
	bw.WriteString(name + "_bucket{le=\"+Inf\"} ")
	*scratch = strconv.AppendUint((*scratch)[:0], cum, 10)
	bw.Write(*scratch)
	bw.WriteByte('\n')
	bw.WriteString(name + "_sum ")
	*scratch = strconv.AppendUint((*scratch)[:0], load(m.first+len(m.bounds)+1), 10)
	bw.Write(*scratch)
	bw.WriteByte('\n')
	bw.WriteString(name + "_count ")
	*scratch = strconv.AppendUint((*scratch)[:0], cum, 10)
	bw.Write(*scratch)
	bw.WriteByte('\n')
}

// promName maps a registry cell name into the Prometheus grammar.
func promName(namespace, name string) string {
	b := make([]byte, 0, len(namespace)+1+len(name))
	b = append(b, namespace...)
	b = append(b, '_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}
