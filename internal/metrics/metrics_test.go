package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterAndBind(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a/ops")
	var external uint64
	r.Bind("b/ops", &external)

	c.Inc()
	c.Add(4)
	external = 7

	if v, ok := r.Value("a/ops"); !ok || v != 5 {
		t.Fatalf("a/ops = %d,%v want 5,true", v, ok)
	}
	if v, ok := r.Value("b/ops"); !ok || v != 7 {
		t.Fatalf("b/ops = %d,%v want 7,true", v, ok)
	}
	if _, ok := r.Value("nosuch"); ok {
		t.Fatal("Value found unregistered name")
	}
	if got := r.Names(); len(got) != 2 || got[0] != "a/ops" || got[1] != "b/ops" {
		t.Fatalf("Names = %v", got)
	}
}

func TestZeroValueInstrumentsAreNoOps(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("zero Counter counted")
	}
	var h Histogram
	h.Observe(3) // must not panic
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	r.Bind("y", new(uint64))
	r.Gauge("z", func() uint64 { return 1 })
	h := r.Histogram("h", 1, 2)
	h.Observe(5)
	if r.Len() != 0 || r.Names() != nil || r.Snapshot() != nil {
		t.Fatal("nil registry not empty")
	}
	r.CloseWindow(10)
	if r.HasSink() {
		t.Fatal("nil registry has sink")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup")
	r.Counter("dup")
}

func TestRegistrationAfterSinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registration after SetSink did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("a")
	r.SetSink(sinkFunc(func(Window) {}))
	r.Counter("b")
}

type sinkFunc func(Window)

func (f sinkFunc) Emit(w Window) { f(w) }

func TestGaugeSampledAtSnapshot(t *testing.T) {
	r := NewRegistry()
	depth := uint64(0)
	r.Gauge("q/depth", func() uint64 { return depth })
	depth = 9
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 9 || snap[0].Kind != KindGauge {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, 8, 64)
	for _, v := range []uint64{0, 1, 2, 8, 9, 64, 65, 1000} {
		h.Observe(v)
	}
	want := map[string]uint64{"lat/le_1": 2, "lat/le_8": 2, "lat/le_64": 2, "lat/inf": 2}
	for name, w := range want {
		if v, ok := r.Value(name); !ok || v != w {
			t.Fatalf("%s = %d,%v want %d", name, v, ok, w)
		}
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	NewRegistry().Histogram("bad", 4, 4)
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := uint64(1)
	r.Gauge("g", func() uint64 { return g })
	c.Add(10)
	prev := r.Snapshot()
	c.Add(5)
	g = 3
	d := Diff(r.Snapshot(), prev)
	if len(d) != 2 {
		t.Fatalf("diff = %+v", d)
	}
	// Sorted by name: c then g.
	if d[0].Name != "c" || d[0].Value != 5 {
		t.Fatalf("counter delta = %+v", d[0])
	}
	if d[1].Name != "g" || d[1].Value != 3 {
		t.Fatalf("gauge sample = %+v", d[1])
	}
}

func TestWindowDeltasSumToTotal(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	var wins []Window
	var deltas []uint64
	r.SetSink(sinkFunc(func(w Window) {
		// Values is reused; copy what we keep.
		cp := w
		cp.Values = append([]uint64(nil), w.Values...)
		wins = append(wins, cp)
		deltas = append(deltas, cp.Values[0])
	}))
	if !r.HasSink() {
		t.Fatal("sink not installed")
	}
	c.Add(3)
	r.CloseWindow(100)
	c.Add(4)
	r.CloseWindow(200)
	r.CloseWindow(200) // empty interval: skipped
	c.Add(5)
	r.CloseWindow(250) // final partial window

	if len(wins) != 3 {
		t.Fatalf("%d windows, want 3", len(wins))
	}
	var sum uint64
	for _, d := range deltas {
		sum += d
	}
	if sum != c.Value() || sum != 12 {
		t.Fatalf("window deltas sum %d, counter %d", sum, c.Value())
	}
	if wins[0].Start != 0 || wins[0].End != 100 || wins[1].Start != 100 || wins[2].End != 250 {
		t.Fatalf("window bounds wrong: %+v", wins)
	}
	for i, w := range wins {
		if w.Index != i {
			t.Fatalf("window %d has index %d", i, w.Index)
		}
	}
}

func TestJSONLWriterValidAndLabeled(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)

	r := NewRegistry()
	c := r.Counter("provider/preloads")
	z := r.Counter("provider/zero") // zero delta: must be elided
	depth := uint64(4)
	r.Gauge("osu/depth", func() uint64 { return depth })
	r.SetSink(jw.Run(String("bench", "bfs"), String("scheme", "regless"), Int("capacity", 512)))

	c.Add(2)
	r.CloseWindow(100)
	c.Add(3)
	depth = 0
	r.CloseWindow(142)
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	_ = z

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2:\n%s", len(lines), buf.String())
	}
	type rec struct {
		Bench    string            `json:"bench"`
		Scheme   string            `json:"scheme"`
		Capacity int               `json:"capacity"`
		Window   int               `json:"window"`
		Start    uint64            `json:"start"`
		End      uint64            `json:"end"`
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]uint64 `json:"gauges"`
	}
	var total uint64
	for i, ln := range lines {
		var v rec
		if err := json.Unmarshal([]byte(ln), &v); err != nil {
			t.Fatalf("line %d invalid JSON: %v\n%s", i, err, ln)
		}
		if v.Bench != "bfs" || v.Scheme != "regless" || v.Capacity != 512 {
			t.Fatalf("labels wrong: %+v", v)
		}
		if v.Window != i {
			t.Fatalf("window index %d on line %d", v.Window, i)
		}
		if _, ok := v.Counters["provider/zero"]; ok {
			t.Fatal("zero-delta counter not elided")
		}
		if _, ok := v.Gauges["osu/depth"]; !ok {
			t.Fatal("gauge missing (gauges must always be written)")
		}
		total += v.Counters["provider/preloads"]
	}
	if total != 5 {
		t.Fatalf("counter deltas sum %d, want 5", total)
	}
	var second rec
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second.Gauges["osu/depth"] != 0 || second.Start != 100 || second.End != 142 {
		t.Fatalf("second record wrong: %+v", second)
	}
}

// The disabled path must stay allocation-free and cheap: a zero Counter's
// Inc is a single branch.
func BenchmarkCounterDisabled(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
