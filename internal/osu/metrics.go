package osu

import "repro/internal/metrics"

// Occupancy returns the live line population by state across all banks.
func (o *OSU) Occupancy() (active, clean, dirty int) {
	for bi := range o.banks {
		for i := range o.banks[bi].lines {
			switch o.banks[bi].lines[i].state {
			case StateActive:
				active++
			case StateClean:
				clean++
			default:
				dirty++
			}
		}
	}
	return
}

// BindMetrics exposes the unit's counters and occupancy on r under
// prefix+"/..." (one OSU per shard, so callers pass e.g. "osu/s0"). The
// occupancy gauges walk the banks only at window boundaries.
func (o *OSU) BindMetrics(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/reads", &o.Stats.Reads)
	r.Bind(prefix+"/writes", &o.Stats.Writes)
	r.Bind(prefix+"/tag_lookups", &o.Stats.TagLookups)
	r.Bind(prefix+"/installs", &o.Stats.Installs)
	r.Bind(prefix+"/erases", &o.Stats.Erases)
	r.Bind(prefix+"/hits", &o.Stats.Hits)
	r.Gauge(prefix+"/active_lines", func() uint64 {
		a, _, _ := o.Occupancy()
		return uint64(a)
	})
	r.Gauge(prefix+"/clean_lines", func() uint64 {
		_, c, _ := o.Occupancy()
		return uint64(c)
	})
	r.Gauge(prefix+"/dirty_lines", func() uint64 {
		_, _, d := o.Occupancy()
		return uint64(d)
	})
}
