// Package osu implements the operand staging unit (paper §5.2): the small
// banked structure that replaces the register file. Each of the 8
// independent banks holds tagged 128-byte lines (one register each) with
// three line populations — active lines reserved by running regions, and
// clean/dirty evictable lines whose values may be reclaimed (clean lines
// drop for free; dirty lines must be written back toward the L1).
//
// The OSU is a pure state machine: timing (tag-port budgets, L1 traffic,
// writeback latency) is orchestrated by the RegLess provider in package
// core, which calls these methods at the cycles the hardware would.
package osu

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/isa"
)

// Config sizes the unit. The paper's 512-entry-per-SM design point is one
// shard of 8 banks x 16 lines per warp scheduler.
type Config struct {
	Banks        int
	LinesPerBank int
}

// State classifies a resident line.
type State uint8

const (
	// StateActive lines belong to a running (or draining) region.
	StateActive State = iota
	// StateClean lines are evictable and unchanged since they were read
	// from the backing store: reclaiming them is free.
	StateClean
	// StateDirty lines are evictable but modified: reclaiming them
	// requires a writeback.
	StateDirty
)

func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateClean:
		return "clean"
	default:
		return "dirty"
	}
}

type line struct {
	warp  int
	reg   isa.Reg
	state State
	lru   uint64
}

type bank struct {
	lines []line // resident lines, at most LinesPerBank
}

// Stats counts OSU events.
type Stats struct {
	Reads      uint64
	Writes     uint64
	TagLookups uint64
	Installs   uint64
	Erases     uint64
	Hits       uint64 // preload tag hits
}

// OSU is one shard's staging unit.
type OSU struct {
	cfg   Config
	Stats Stats
	banks []bank
	clock uint64

	rec   *events.Recorder // nil-safe: disabled tracing costs one branch
	shard int
}

// SetRecorder attaches an event recorder; line lifecycle events
// (alloc/activate/demote/evict/erase) are emitted under this shard ID.
func (o *OSU) SetRecorder(r *events.Recorder, shard int) {
	o.rec = r
	o.shard = shard
}

func lineState(s State) events.LineState { return events.LineState(s) }

// New builds an OSU.
func New(cfg Config) *OSU {
	o := &OSU{cfg: cfg, banks: make([]bank, cfg.Banks)}
	for i := range o.banks {
		o.banks[i].lines = make([]line, 0, cfg.LinesPerBank)
	}
	return o
}

// Bank returns the bank index for (warp, reg) — (warp+reg) mod banks
// (§5.2).
func (o *OSU) Bank(warp int, reg isa.Reg) int {
	return (warp + int(reg)) % o.cfg.Banks
}

// Banks returns the configured bank count.
func (o *OSU) Banks() int { return o.cfg.Banks }

// LinesPerBank returns per-bank capacity.
func (o *OSU) LinesPerBank() int { return o.cfg.LinesPerBank }

func (o *OSU) find(warp int, reg isa.Reg) (*bank, int) {
	b := &o.banks[o.Bank(warp, reg)]
	for i := range b.lines {
		if b.lines[i].warp == warp && b.lines[i].reg == reg {
			return b, i
		}
	}
	return b, -1
}

// Lookup performs a tag lookup, reporting presence and state.
func (o *OSU) Lookup(warp int, reg isa.Reg) (State, bool) {
	o.Stats.TagLookups++
	_, i := o.find(warp, reg)
	if i < 0 {
		return 0, false
	}
	b := &o.banks[o.Bank(warp, reg)]
	return b.lines[i].state, true
}

// Activate turns a resident evictable line back into an active one (a
// preload hit). It reports whether the line was present.
func (o *OSU) Activate(warp int, reg isa.Reg) bool {
	b, i := o.find(warp, reg)
	if i < 0 {
		return false
	}
	o.Stats.Hits++
	o.clock++
	o.rec.OSULine(events.KindOSUActivate, o.shard, warp, uint32(reg), lineState(b.lines[i].state))
	b.lines[i].state = StateActive
	b.lines[i].lru = o.clock
	return true
}

// Victim describes a dirty line displaced by Install that must be written
// back toward the L1.
type Victim struct {
	Warp int
	Reg  isa.Reg
}

// Install allocates an active line for (warp, reg) — a preload arrival or
// an interior register's first write. Allocation takes a free slot if one
// exists, then drops the LRU clean line, then displaces the LRU dirty
// line (returned for writeback). It fails only if every line in the bank
// is active, which the capacity manager's reservations must prevent.
func (o *OSU) Install(warp int, reg isa.Reg) (Victim, bool, error) {
	if _, i := o.find(warp, reg); i >= 0 {
		return Victim{}, false, fmt.Errorf("osu: install of resident line w%d %v", warp, reg)
	}
	b := &o.banks[o.Bank(warp, reg)]
	o.clock++
	o.Stats.Installs++
	o.rec.OSULine(events.KindOSUAlloc, o.shard, warp, uint32(reg), events.LineActive)
	nl := line{warp: warp, reg: reg, state: StateActive, lru: o.clock}
	if len(b.lines) < o.cfg.LinesPerBank {
		b.lines = append(b.lines, nl)
		return Victim{}, false, nil
	}
	// Reclaim: LRU clean first, then LRU dirty.
	idx := -1
	var oldest uint64 = ^uint64(0)
	for i := range b.lines {
		if b.lines[i].state == StateClean && b.lines[i].lru < oldest {
			oldest = b.lines[i].lru
			idx = i
		}
	}
	if idx >= 0 {
		o.rec.OSULine(events.KindOSUErase, o.shard, b.lines[idx].warp, uint32(b.lines[idx].reg), events.LineClean)
		b.lines[idx] = nl
		return Victim{}, false, nil
	}
	oldest = ^uint64(0)
	for i := range b.lines {
		if b.lines[i].state == StateDirty && b.lines[i].lru < oldest {
			oldest = b.lines[i].lru
			idx = i
		}
	}
	if idx < 0 {
		return Victim{}, false, fmt.Errorf("osu: bank %d full of active lines installing w%d %v",
			o.Bank(warp, reg), warp, reg)
	}
	v := Victim{Warp: b.lines[idx].warp, Reg: b.lines[idx].reg}
	o.rec.OSULine(events.KindOSUEvict, o.shard, v.Warp, uint32(v.Reg), events.LineDirty)
	b.lines[idx] = nl
	return v, true, nil
}

// Erase frees a line outright (dead value: interior last use, invalidating
// read completion, or cache invalidation of a resident register). It
// reports whether the line was present.
func (o *OSU) Erase(warp int, reg isa.Reg) bool {
	b, i := o.find(warp, reg)
	if i < 0 {
		return false
	}
	o.Stats.Erases++
	o.rec.OSULine(events.KindOSUErase, o.shard, warp, uint32(reg), lineState(b.lines[i].state))
	b.lines[i] = b.lines[len(b.lines)-1]
	b.lines = b.lines[:len(b.lines)-1]
	return true
}

// MarkEvictable demotes an active line to the clean or dirty list. It
// reports whether the line was present and active.
func (o *OSU) MarkEvictable(warp int, reg isa.Reg, dirty bool) bool {
	b, i := o.find(warp, reg)
	if i < 0 || b.lines[i].state != StateActive {
		return false
	}
	o.clock++
	if dirty {
		b.lines[i].state = StateDirty
	} else {
		b.lines[i].state = StateClean
	}
	o.rec.OSULine(events.KindOSUDemote, o.shard, warp, uint32(reg), lineState(b.lines[i].state))
	b.lines[i].lru = o.clock
	return true
}

// CountRead accounts one data-array read.
func (o *OSU) CountRead() { o.Stats.Reads++ }

// CountWrite accounts one data-array write.
func (o *OSU) CountWrite() { o.Stats.Writes++ }

// FreeWarp erases every line belonging to a finished warp and returns how
// many were freed.
func (o *OSU) FreeWarp(warp int) int {
	n := 0
	for bi := range o.banks {
		b := &o.banks[bi]
		for i := 0; i < len(b.lines); {
			if b.lines[i].warp == warp {
				o.rec.OSULine(events.KindOSUErase, o.shard, warp, uint32(b.lines[i].reg), lineState(b.lines[i].state))
				b.lines[i] = b.lines[len(b.lines)-1]
				b.lines = b.lines[:len(b.lines)-1]
				n++
			} else {
				i++
			}
		}
	}
	return n
}

// ActiveLines returns the active-line count in a bank (capacity checks).
func (o *OSU) ActiveLines(bank int) int {
	n := 0
	for i := range o.banks[bank].lines {
		if o.banks[bank].lines[i].state == StateActive {
			n++
		}
	}
	return n
}

// ResidentLines returns the total resident lines in a bank.
func (o *OSU) ResidentLines(bank int) int { return len(o.banks[bank].lines) }

// pickLine returns the pick-th resident line counting across banks, or
// nil when the unit is empty (fault injection retries next cycle).
func (o *OSU) pickLine(pick int) *line {
	total := 0
	for bi := range o.banks {
		total += len(o.banks[bi].lines)
	}
	if total == 0 {
		return nil
	}
	idx := pick % total
	for bi := range o.banks {
		if idx < len(o.banks[bi].lines) {
			return &o.banks[bi].lines[idx]
		}
		idx -= len(o.banks[bi].lines)
	}
	return nil
}

// CorruptTag bumps a resident line's register tag (fault injection: a
// tag-array bit flip). The line stays in its original bank, so the bank
// placement invariant breaks and CheckInvariants names this unit. It
// reports what was corrupted, or false when no line is resident yet.
func (o *OSU) CorruptTag(pick int) (string, bool) {
	ln := o.pickLine(pick)
	if ln == nil {
		return "", false
	}
	old := ln.reg
	ln.reg++
	return fmt.Sprintf("line w%d tag %v -> %v (bank %d)", ln.warp, old, ln.reg, o.Bank(ln.warp, old)), true
}

// CorruptState flips a resident line between the active and evictable
// populations (fault injection: a state-array bit flip), breaking the
// active-lines vs staged-register agreement the core sanitizer checks.
// It reports what was corrupted, or false when no line is resident yet.
func (o *OSU) CorruptState(pick int) (string, bool) {
	ln := o.pickLine(pick)
	if ln == nil {
		return "", false
	}
	old := ln.state
	if ln.state == StateActive {
		ln.state = StateClean
	} else {
		ln.state = StateActive
	}
	return fmt.Sprintf("line w%d %v state %v -> %v", ln.warp, ln.reg, old, ln.state), true
}

// CheckInvariants verifies structural sanity (tests): no duplicate tags,
// per-bank occupancy within capacity, correct bank placement.
func (o *OSU) CheckInvariants() error {
	seen := map[[2]int]bool{}
	for bi := range o.banks {
		b := &o.banks[bi]
		if len(b.lines) > o.cfg.LinesPerBank {
			return fmt.Errorf("osu: bank %d holds %d lines (cap %d)", bi, len(b.lines), o.cfg.LinesPerBank)
		}
		for i := range b.lines {
			ln := &b.lines[i]
			key := [2]int{ln.warp, int(ln.reg)}
			if seen[key] {
				return fmt.Errorf("osu: duplicate line w%d %v", ln.warp, ln.reg)
			}
			seen[key] = true
			if o.Bank(ln.warp, ln.reg) != bi {
				return fmt.Errorf("osu: line w%d %v in wrong bank %d", ln.warp, ln.reg, bi)
			}
		}
	}
	return nil
}
