package osu

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

func newTestOSU() *OSU { return New(Config{Banks: 8, LinesPerBank: 4}) }

func TestBankMapping(t *testing.T) {
	o := newTestOSU()
	if o.Bank(0, 3) != 3 || o.Bank(1, 3) != 4 || o.Bank(7, 1) != 0 {
		t.Fatal("bank mapping wrong")
	}
}

func TestInstallLookupErase(t *testing.T) {
	o := newTestOSU()
	if _, ok := o.Lookup(2, 5); ok {
		t.Fatal("lookup hit in empty OSU")
	}
	if _, _, err := o.Install(2, 5); err != nil {
		t.Fatal(err)
	}
	st, ok := o.Lookup(2, 5)
	if !ok || st != StateActive {
		t.Fatalf("lookup = %v, %v", st, ok)
	}
	if _, _, err := o.Install(2, 5); err == nil {
		t.Fatal("double install accepted")
	}
	if !o.Erase(2, 5) {
		t.Fatal("erase missed")
	}
	if o.Erase(2, 5) {
		t.Fatal("double erase succeeded")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionPreference(t *testing.T) {
	o := New(Config{Banks: 1, LinesPerBank: 3})
	// Fill the single bank: one clean, one dirty, one active.
	mustInstall(t, o, 0, 0)
	o.MarkEvictable(0, 0, false) // clean
	mustInstall(t, o, 0, 1)
	o.MarkEvictable(0, 1, true) // dirty
	mustInstall(t, o, 0, 2)     // active

	// Next install must drop the clean line, no writeback.
	v, wb, err := o.Install(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if wb {
		t.Fatalf("clean reclaim triggered writeback of %+v", v)
	}
	if _, ok := o.Lookup(0, 0); ok {
		t.Fatal("clean line still resident")
	}
	// Next install must displace the dirty line with a writeback.
	v, wb, err = o.Install(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !wb || v.Reg != 1 {
		t.Fatalf("expected dirty victim reg 1, got %+v wb=%v", v, wb)
	}
	// Bank now all active: further installs must fail.
	if _, _, err := o.Install(0, 5); err == nil {
		t.Fatal("install succeeded with all-active bank")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func mustInstall(t *testing.T, o *OSU, w int, r isa.Reg) {
	t.Helper()
	if _, _, err := o.Install(w, r); err != nil {
		t.Fatal(err)
	}
}

func TestActivateResident(t *testing.T) {
	o := newTestOSU()
	mustInstall(t, o, 1, 2)
	o.MarkEvictable(1, 2, true)
	if !o.Activate(1, 2) {
		t.Fatal("activate missed resident line")
	}
	st, ok := o.Lookup(1, 2)
	if !ok || st != StateActive {
		t.Fatalf("state after activate = %v", st)
	}
	if o.Activate(3, 9) {
		t.Fatal("activate hit absent line")
	}
}

func TestMarkEvictableRequiresActive(t *testing.T) {
	o := newTestOSU()
	mustInstall(t, o, 0, 0)
	if !o.MarkEvictable(0, 0, false) {
		t.Fatal("mark failed on active line")
	}
	if o.MarkEvictable(0, 0, true) {
		t.Fatal("mark succeeded on already-evictable line")
	}
}

func TestFreeWarp(t *testing.T) {
	o := newTestOSU()
	mustInstall(t, o, 3, 0)
	mustInstall(t, o, 3, 1)
	mustInstall(t, o, 4, 0)
	if n := o.FreeWarp(3); n != 2 {
		t.Fatalf("freed %d lines, want 2", n)
	}
	if _, ok := o.Lookup(4, 0); !ok {
		t.Fatal("other warp's line freed")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestActiveLinesCount(t *testing.T) {
	o := newTestOSU()
	mustInstall(t, o, 0, 8) // bank 0
	mustInstall(t, o, 0, 16)
	o.MarkEvictable(0, 16, true)
	if o.ActiveLines(0) != 1 {
		t.Fatalf("active lines = %d", o.ActiveLines(0))
	}
	if o.ResidentLines(0) != 2 {
		t.Fatalf("resident lines = %d", o.ResidentLines(0))
	}
}

// Random workout: interleave installs, evictable marks, erases and
// activates; invariants must hold throughout and capacity never exceeded.
func TestRandomWorkout(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	o := New(Config{Banks: 4, LinesPerBank: 3})
	type key struct {
		w int
		r isa.Reg
	}
	resident := map[key]State{}
	for step := 0; step < 3000; step++ {
		w := rng.Intn(6)
		r := isa.Reg(rng.Intn(12))
		k := key{w, r}
		switch rng.Intn(4) {
		case 0:
			if _, ok := resident[k]; ok {
				break
			}
			// Install only if some line in the bank is reclaimable.
			b := o.Bank(w, r)
			if o.ActiveLines(b) >= 3 {
				break
			}
			v, wb, err := o.Install(w, r)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if wb {
				delete(resident, key{v.Warp, v.Reg})
			}
			// Clean drops may also remove entries; resync below.
			resident[k] = StateActive
		case 1:
			if o.MarkEvictable(w, r, rng.Intn(2) == 0) {
				if st, ok := o.Lookup(w, r); ok {
					resident[k] = st
				}
			}
		case 2:
			if o.Erase(w, r) {
				delete(resident, k)
			}
		case 3:
			o.Activate(w, r)
		}
		if err := o.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}
