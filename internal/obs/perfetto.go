package obs

import (
	"fmt"
	"io"

	"repro/internal/events"
)

// WriteChrome exports the trace as Chrome trace-event JSON through the
// shared events.ChromeTrace writer, so a service-level run trace opens
// in the same viewer as the cycle-level traces (-trace). Every span
// becomes a complete ("X") event; spans still open render with the
// duration they had reached at the call. label names the single process
// track (e.g. the run id).
func (t *Trace) WriteChrome(w io.Writer, label string) error {
	spans := t.Spans()
	now := t.Now()
	other := fmt.Sprintf("{\"kind\":\"service-trace\",\"label\":%q,\"unit\":\"1us wall time\"}", label)
	ct := events.NewChromeTrace(w, other)
	ct.Meta(1, 0, "process_name", label, nil)
	// One row per tree depth keeps parent spans above their children.
	depth := make([]int, len(spans))
	for i, sp := range spans {
		if sp.Parent >= 0 && int(sp.Parent) < i {
			depth[i] = depth[sp.Parent] + 1
		}
	}
	for i, sp := range spans {
		end := sp.End
		if end < 0 {
			end = now
		}
		dur := end - sp.Start
		if dur < 1 {
			dur = 1 // zero-width spans would be invisible
		}
		ct.Emit(events.TraceEvent{
			Name: sp.Name, Ph: "X",
			Ts: uint64(sp.Start), Dur: uint64(dur),
			Pid: 1, Tid: depth[i],
			Args: map[string]any{"span": i, "parent": int(sp.Parent)},
		})
	}
	return ct.Close()
}
