// Package obs is the service-level tracing substrate: a lightweight
// span tree recorded per HTTP request / executed run, the counterpart of
// internal/events' cycle-level recorder one layer up the stack. A Trace
// is a flat append-only slice of Spans (parent by index), so recording a
// span is a mutex acquire plus one append into a pre-grown slice — cheap
// enough to be always on, in keeping with the metrics/events idiom that
// disabled-or-idle instrumentation costs ~nothing.
//
// Time is microseconds since the trace's epoch. Serving spans measure
// wall time (admission-queue wait, store I/O, simulation), unlike
// internal/events where 1 us encodes 1 simulated cycle; the Perfetto
// export (WriteChrome) makes both kinds load in the same viewer.
//
// Every method is safe on a nil *Trace (no-op / zero), so producers
// instrument unconditionally and the caller decides whether a trace
// exists. Context carries a (*Trace, parent SpanID) pair across layer
// boundaries — serve.execute hands it to experiments.Suite.GetCtx, which
// records its kernel-load/build/run children without importing serve.
package obs

import (
	"context"
	"sync"
	"time"
)

// SpanID indexes a span within its trace. The root is always span 0.
type SpanID int32

// NoSpan is the nil span reference: the root's parent, and the id
// returned by Start on a nil trace. Ending it is a no-op.
const NoSpan SpanID = -1

// Root is the root span's id in every trace.
const Root SpanID = 0

// Span is one recorded interval. Start/End are microseconds since the
// trace epoch; End is -1 while the span is open.
type Span struct {
	Name   string
	Parent SpanID
	Start  int64
	End    int64
}

// Trace is one request's or run's span tree. Create with NewTrace; all
// methods are goroutine-safe and nil-safe.
type Trace struct {
	epoch time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace opens a trace whose root span is named root and starts at
// microsecond 0 (the epoch is captured now).
func NewTrace(root string) *Trace {
	t := &Trace{epoch: time.Now(), spans: make([]Span, 1, 8)}
	t.spans[0] = Span{Name: root, Parent: NoSpan, Start: 0, End: -1}
	return t
}

// Now returns the current trace time in microseconds since the epoch
// (0 on a nil trace). Callers that need adjacent spans to tile exactly
// read Now once and pass the value to EndAt/StartAt for both.
func (t *Trace) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch) / time.Microsecond)
}

// StartAt opens a child of parent at the given trace time.
func (t *Trace) StartAt(parent SpanID, name string, at int64) SpanID {
	if t == nil {
		return NoSpan
	}
	t.mu.Lock()
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, Span{Name: name, Parent: parent, Start: at, End: -1})
	t.mu.Unlock()
	return id
}

// Start opens a child of parent now.
func (t *Trace) Start(parent SpanID, name string) SpanID {
	return t.StartAt(parent, name, t.Now())
}

// EndAt closes span id at the given trace time. Closing NoSpan, an
// unknown id, or an already-closed span is a no-op.
func (t *Trace) EndAt(id SpanID, at int64) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	if int(id) < len(t.spans) && t.spans[id].End < 0 {
		t.spans[id].End = at
	}
	t.mu.Unlock()
}

// End closes span id now.
func (t *Trace) End(id SpanID) { t.EndAt(id, t.Now()) }

// CloseAt ends the root span at the given trace time; Close ends it now.
// A closed trace may still be read concurrently while later submissions
// of the same run fetch it.
func (t *Trace) CloseAt(at int64) { t.EndAt(Root, at) }

// Close ends the root span now.
func (t *Trace) Close() { t.EndAt(Root, t.Now()) }

// StartOf returns span id's start time (0 if unknown).
func (t *Trace) StartOf(id SpanID) int64 {
	if t == nil || id < 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.spans) {
		return 0
	}
	return t.spans[id].Start
}

// Spans returns a copy of the recorded spans in creation order (index ==
// SpanID). Open spans have End == -1.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Node is the JSON rendering of a span subtree (GET /v1/runs/{id}/trace).
type Node struct {
	Name     string  `json:"name"`
	StartUS  int64   `json:"start_us"`
	DurUS    int64   `json:"dur_us"`
	Children []*Node `json:"children,omitempty"`
}

// Tree renders the trace as a root Node with children in creation order.
// Open spans render with the duration they had reached at the call.
func (t *Trace) Tree() *Node {
	spans := t.Spans()
	if len(spans) == 0 {
		return nil
	}
	now := t.Now()
	nodes := make([]*Node, len(spans))
	for i, sp := range spans {
		end := sp.End
		if end < 0 {
			end = now
		}
		nodes[i] = &Node{Name: sp.Name, StartUS: sp.Start, DurUS: end - sp.Start}
	}
	for i, sp := range spans {
		if sp.Parent >= 0 && int(sp.Parent) < len(nodes) {
			p := nodes[sp.Parent]
			p.Children = append(p.Children, nodes[i])
		}
	}
	return nodes[0]
}

// ctxKey carries the (trace, parent span) pair through a context.
type ctxKey struct{}

type ctxVal struct {
	t      *Trace
	parent SpanID
}

// NewContext returns ctx carrying t with parent as the attachment point
// for child spans recorded downstream. A nil t is carried as-is (readers
// get the nil trace and record nothing).
func NewContext(ctx context.Context, t *Trace, parent SpanID) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: t, parent: parent})
}

// FromContext returns the trace and parent span carried by ctx, or
// (nil, NoSpan) when ctx carries none — safe to use directly with the
// nil-tolerant Trace methods.
func FromContext(ctx context.Context) (*Trace, SpanID) {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.t, v.parent
	}
	return nil, NoSpan
}
