package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if got := tr.Now(); got != 0 {
		t.Fatalf("nil Now = %d", got)
	}
	id := tr.Start(Root, "x")
	if id != NoSpan {
		t.Fatalf("nil Start = %d, want NoSpan", id)
	}
	tr.End(id)
	tr.Close()
	if tr.Spans() != nil || tr.Tree() != nil {
		t.Fatal("nil trace produced spans")
	}
}

func TestSpanTreeAndTiling(t *testing.T) {
	tr := NewTrace("run")
	// Boundaries shared between adjacent children, the serve idiom.
	q := tr.StartAt(Root, "queue", 0)
	tr.EndAt(q, 10)
	g := tr.StartAt(Root, "store-get", 10)
	tr.EndAt(g, 25)
	sim := tr.StartAt(Root, "simulate", 25)
	kl := tr.StartAt(sim, "kernel-load", 26)
	tr.EndAt(kl, 30)
	tr.EndAt(sim, 90)
	tr.CloseAt(90)

	root := tr.Tree()
	if root == nil || root.Name != "run" || root.DurUS != 90 {
		t.Fatalf("bad root: %+v", root)
	}
	if len(root.Children) != 3 {
		t.Fatalf("root children = %d, want 3", len(root.Children))
	}
	at := root.StartUS
	for _, c := range root.Children {
		if c.StartUS != at {
			t.Fatalf("child %q starts at %d, want %d (no tiling)", c.Name, c.StartUS, at)
		}
		at = c.StartUS + c.DurUS
	}
	if at != root.StartUS+root.DurUS {
		t.Fatalf("children end at %d, root ends at %d", at, root.StartUS+root.DurUS)
	}
	if len(root.Children[2].Children) != 1 || root.Children[2].Children[0].Name != "kernel-load" {
		t.Fatalf("nested child missing: %+v", root.Children[2])
	}
	// Double-close must not move the end.
	tr.CloseAt(400)
	if got := tr.Spans()[0].End; got != 90 {
		t.Fatalf("root end moved to %d after double close", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := NewTrace("run")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				id := tr.Start(Root, "child")
				tr.End(id)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 1+800 {
		t.Fatalf("spans = %d, want 801", got)
	}
}

func TestContextPropagation(t *testing.T) {
	if tr, parent := FromContext(context.Background()); tr != nil || parent != NoSpan {
		t.Fatalf("empty context returned %v, %d", tr, parent)
	}
	tr := NewTrace("run")
	sim := tr.Start(Root, "simulate")
	ctx := NewContext(context.Background(), tr, sim)
	got, parent := FromContext(ctx)
	if got != tr || parent != sim {
		t.Fatalf("round trip lost the pair: %v %d", got, parent)
	}
	// A nil trace carried through a context stays nil-safe downstream.
	ctx = NewContext(context.Background(), nil, NoSpan)
	got, parent = FromContext(ctx)
	if got != nil || parent != NoSpan {
		t.Fatalf("nil carry = %v %d", got, parent)
	}
	if id := got.Start(parent, "x"); id != NoSpan {
		t.Fatalf("nil-carried trace recorded %d", id)
	}
}

func TestWriteChromeParses(t *testing.T) {
	tr := NewTrace("run")
	q := tr.StartAt(Root, "queue", 0)
	tr.EndAt(q, 5)
	tr.CloseAt(5)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, "run abc"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData   map[string]any   `json:"otherData"`
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.OtherData["kind"] != "service-trace" {
		t.Fatalf("otherData = %v", doc.OtherData)
	}
	// 1 process_name meta + 2 spans.
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
	}
}
