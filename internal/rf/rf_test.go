package rf

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/sim"
)

func testCfg() sim.Config {
	c := sim.DefaultConfig()
	c.Warps = 16
	c.MaxCycles = 5_000_000
	return c
}

// runProvider simulates k under p and checks architectural equivalence
// with the functional reference.
func runProvider(t *testing.T, k *isa.Kernel, cfgv sim.Config, p sim.Provider) *sim.Stats {
	t.Helper()
	mm := exec.NewMemory(nil)
	smv, err := sim.New(cfgv, k, p, mm)
	if err != nil {
		t.Fatal(err)
	}
	st, err := smv.Run()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := exec.Run(k, cfgv.Warps, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	got := mm.GlobalStores()
	if len(got) != len(ref.Stores) {
		t.Fatalf("%s: store count %d, want %d", p.Name(), len(got), len(ref.Stores))
	}
	for a, v := range ref.Stores {
		if got[a] != v {
			t.Fatalf("%s: store mismatch at %#x: %d vs %d", p.Name(), a, got[a], v)
		}
	}
	return st
}

func TestBaselineAllBenchmarks(t *testing.T) {
	for _, bm := range kernels.Suite() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			k := kernels.MustLoad(bm.Name)
			st := runProvider(t, k, testCfg(), NewBaseline())
			if st.IPC() <= 0 {
				t.Fatalf("IPC = %v", st.IPC())
			}
		})
	}
}

func TestBaselineCountsAccesses(t *testing.T) {
	k := kernels.MustLoad("streamcluster")
	p := NewBaseline()
	st := runProvider(t, k, testCfg(), p)
	ps := p.Stats()
	if ps.StructReads == 0 || ps.StructWrites == 0 {
		t.Fatalf("no RF accesses counted: %+v", ps)
	}
	if ps.BackingAccesses != ps.StructReads+ps.StructWrites {
		t.Fatal("baseline backing accesses must equal RF accesses")
	}
	if ps.StructReads+ps.StructWrites < st.DynInsns {
		t.Fatalf("implausibly few RF accesses (%d) for %d instructions",
			ps.StructReads+ps.StructWrites, st.DynInsns)
	}
}

func TestRFVEquivalenceAndRelease(t *testing.T) {
	for _, name := range []string{"bfs", "lud", "hotspot", "hybridsort"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k := kernels.MustLoad(name)
			// Generous pool: no stalls expected, but mapping/release
			// must still work.
			p := NewRFV(1024)
			runProvider(t, k, testCfg(), p)
			if p.LiveMapped() != 0 {
				t.Fatalf("%d physical registers leaked", p.LiveMapped())
			}
			if p.Stats().StructReads == 0 {
				t.Fatal("no reads counted")
			}
		})
	}
}

func TestRFVPressureSpills(t *testing.T) {
	// dwt2d holds many registers live; a tiny physical pool must spill
	// and slow the run down versus a large pool.
	k := kernels.MustLoad("dwt2d")
	cfgv := testCfg()
	big := NewRFV(2048)
	stBig := runProvider(t, k, cfgv, big)
	small := NewRFV(k.NumRegs + 8)
	stSmall := runProvider(t, k, cfgv, small)
	if small.Spills() == 0 {
		t.Fatal("tiny pool produced no spills")
	}
	if stSmall.Cycles <= stBig.Cycles {
		t.Fatalf("register pressure had no cost: %d vs %d cycles", stSmall.Cycles, stBig.Cycles)
	}
}

func TestRFHLevelSplit(t *testing.T) {
	// Aggregate over a mixed subset: the hierarchy's premise is that
	// the small structures capture most reads on typical kernels, with
	// some MRF traffic remaining.
	var lrf, orf, mrf, backing uint64
	for _, name := range []string{"lud", "streamcluster", "hotspot", "backprop", "myocyte"} {
		k := kernels.MustLoad(name)
		cfgv := testCfg()
		cfgv.Sched = sim.SchedTwoLevel
		p := NewRFH(4)
		runProvider(t, k, cfgv, p)
		ps := p.Stats()
		lrf += ps.LRFAccesses
		orf += ps.ORFAccesses
		mrf += ps.MRFAccesses
		backing += ps.BackingAccesses
	}
	total := lrf + orf + mrf
	if total == 0 {
		t.Fatal("no classified accesses")
	}
	if mrf == 0 || backing == 0 {
		t.Fatal("no MRF/backing traffic — hierarchy model degenerate")
	}
	if float64(mrf)/float64(total) > 0.6 {
		t.Fatalf("MRF serves %d/%d accesses — hierarchy ineffective", mrf, total)
	}
}

func TestRFHBackingBelowBaseline(t *testing.T) {
	// Figure 3's ordering: RFH makes far fewer backing-store accesses
	// than the baseline on hotspot.
	k := kernels.MustLoad("hotspot")
	base := NewBaseline()
	runProvider(t, k, testCfg(), base)
	cfgv := testCfg()
	cfgv.Sched = sim.SchedTwoLevel
	hier := NewRFH(8)
	runProvider(t, k, cfgv, hier)
	if hier.Stats().BackingAccesses*2 >= base.Stats().BackingAccesses {
		t.Fatalf("RFH backing %d not well below baseline %d",
			hier.Stats().BackingAccesses, base.Stats().BackingAccesses)
	}
}
