package rf

import (
	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/sim"
)

// RFV models register file virtualization (Jeon et al. [19]): a half-size
// physical register file with renaming. Dead values' physical registers
// are released at their last read (compiler last-use annotations) and
// writes allocate physical registers on demand. When the pool is
// exhausted, the oldest resident mapping is victimized to the memory
// system and must be refilled (with a latency penalty and extra backing
// traffic) before its next use — the register-pressure cost the paper
// reports for dwt2d and hotspot (§6.3).
type RFV struct {
	sm *sim.SM
	lv *cfg.Liveness
	m  *sim.ProviderCounters

	physRegs int
	free     int

	// mapped[w][r]: (warp w, arch reg r) holds a physical register.
	mapped [][]bool
	// spilled[w][r]: the value was victimized and lives in memory.
	spilled [][]bool
	// fifo orders resident mappings for victim selection.
	fifo []rfvEntry

	// SpillPenalty is the issue-stall charged to refill a spilled value.
	SpillPenalty int
	spills       uint64
	refills      uint64
}

type rfvEntry struct {
	warp int
	reg  isa.Reg
}

// NewRFV builds the provider with the given physical pool size (the paper
// assumes half the baseline register file).
func NewRFV(physRegs int) *RFV {
	return &RFV{physRegs: physRegs, SpillPenalty: 40}
}

// Name implements sim.Provider.
func (v *RFV) Name() string { return "rfv" }

// Attach implements sim.Provider.
func (v *RFV) Attach(sm *sim.SM) error {
	v.sm = sm
	v.m = sim.NewProviderCounters(sm.Metrics)
	v.lv = cfg.ComputeLiveness(sm.G)
	v.free = v.physRegs
	v.mapped = make([][]bool, len(sm.Warps))
	v.spilled = make([][]bool, len(sm.Warps))
	for i := range v.mapped {
		v.mapped[i] = make([]bool, sm.K.NumRegs)
		v.spilled[i] = make([]bool, sm.K.NumRegs)
	}
	return nil
}

// CanIssue implements sim.Provider: RFV never blocks issue; pressure shows
// up as spill/refill penalties instead.
func (v *RFV) CanIssue(*sim.Warp) bool { return true }

// alloc maps (w, r), victimizing the oldest resident mapping if needed,
// and returns the penalty incurred.
func (v *RFV) alloc(w int, r isa.Reg) int {
	penalty := 0
	if v.free == 0 {
		// Victimize the oldest resident mapping: its value moves to
		// the memory system (costing a backing write) and must be
		// refilled before reuse.
		for len(v.fifo) > 0 {
			e := v.fifo[0]
			v.fifo = v.fifo[1:]
			if v.mapped[e.warp][e.reg] {
				v.mapped[e.warp][e.reg] = false
				v.spilled[e.warp][e.reg] = true
				v.free++
				v.spills++
				v.m.Evictions.Inc()
				v.m.BackingAccesses.Inc()
				break
			}
		}
		if v.free == 0 {
			// Pool smaller than one instruction's needs; charge the
			// penalty and proceed (degenerate configuration).
			v.m.StallCycles.Inc()
			return v.SpillPenalty
		}
	}
	v.free--
	v.mapped[w][r] = true
	v.fifo = append(v.fifo, rfvEntry{warp: w, reg: r})
	return penalty
}

// touch ensures (w, r) is resident before an access, refilling spills.
func (v *RFV) touch(w int, r isa.Reg) int {
	if v.mapped[w][r] {
		return 0
	}
	penalty := v.alloc(w, r)
	if v.spilled[w][r] {
		v.spilled[w][r] = false
		v.refills++
		v.m.BackingAccesses.Inc() // refill read from the memory system
		penalty += v.SpillPenalty
	}
	return penalty
}

// OnIssue performs renaming, access counting, last-use release, and
// spill/refill accounting.
func (v *RFV) OnIssue(w *sim.Warp, info *exec.StepInfo) int {
	in := info.Insn
	gi := v.sm.G.GlobalIndex(info.PC)
	penalty := 0
	for i := 0; i < in.Op.NumSrc(); i++ {
		r := in.Src[i]
		if !r.Valid() {
			continue
		}
		v.m.StructReads.Inc()
		penalty += v.touch(w.ID, r)
		// Release at last read (renaming reclaims dead values).
		if v.lv.IsLastUse(gi, r) && v.mapped[w.ID][r] {
			v.mapped[w.ID][r] = false
			v.free++
		}
	}
	if in.Op.HasDst() && in.Dst.Valid() {
		v.m.StructWrites.Inc()
		if !v.mapped[w.ID][in.Dst] {
			// A fresh write does not refill: the old value dies.
			v.spilled[w.ID][in.Dst] = false
			penalty += v.alloc(w.ID, in.Dst)
		}
	}
	if penalty > 0 {
		v.m.StallCycles.Add(uint64(penalty))
	}
	return penalty
}

// OnWriteback implements sim.Provider.
func (v *RFV) OnWriteback(*sim.Warp, isa.Reg) {}

// OnWarpFinish releases the warp's remaining physical registers.
func (v *RFV) OnWarpFinish(w *sim.Warp) {
	for r, m := range v.mapped[w.ID] {
		if m {
			v.mapped[w.ID][r] = false
			v.free++
		}
		v.spilled[w.ID][r] = false
	}
}

// Tick implements sim.Provider.
func (v *RFV) Tick() {}

// Drained implements sim.Provider.
func (v *RFV) Drained() bool { return true }

// Stats implements sim.Provider.
func (v *RFV) Stats() *sim.ProviderStats { return v.m.Stats() }

// LiveMapped returns the currently mapped physical register count (tests).
func (v *RFV) LiveMapped() int { return v.physRegs - v.free }

// Spills returns the victimization count (tests and experiments).
func (v *RFV) Spills() uint64 { return v.spills }

// HotHints implements sim.HintedProvider: RFV never gates issue (pressure
// shows up as OnIssue penalties) and has no per-cycle machinery or
// writeback work.
func (v *RFV) HotHints() sim.HotPathHints {
	return sim.HotPathHints{AlwaysIssuable: true, PassiveTick: true, PassiveWriteback: true}
}
