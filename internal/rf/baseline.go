// Package rf implements the non-RegLess register storage schemes the paper
// compares against: the baseline banked register file, RFV (register file
// virtualization, Jeon et al. [19]), and RFH (the compile-time managed
// register file hierarchy, Gebhart et al. [11]).
package rf

import (
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/sim"
)

// BaselineBanks is the baseline register file's bank count per SM.
const BaselineBanks = 32

// Baseline is the conventional full-size register file: every operand read
// and write accesses the main RF. It never stalls a warp.
type Baseline struct {
	sm *sim.SM
	m  *sim.ProviderCounters
}

// NewBaseline returns the baseline provider.
func NewBaseline() *Baseline { return &Baseline{} }

// Name implements sim.Provider.
func (b *Baseline) Name() string { return "baseline" }

// Attach implements sim.Provider.
func (b *Baseline) Attach(sm *sim.SM) error {
	b.sm = sm
	b.m = sim.NewProviderCounters(sm.Metrics)
	return nil
}

// CanIssue implements sim.Provider: the full RF always has every register.
func (b *Baseline) CanIssue(*sim.Warp) bool { return true }

// OnIssue counts RF accesses and charges operand-bank conflicts.
func (b *Baseline) OnIssue(w *sim.Warp, info *exec.StepInfo) int {
	in := info.Insn
	var banks [BaselineBanks]bool
	conflicts := 0
	for i := 0; i < in.Op.NumSrc(); i++ {
		r := in.Src[i]
		if !r.Valid() {
			continue
		}
		b.m.StructReads.Inc()
		b.m.BackingAccesses.Inc()
		bank := (int(r) + w.ID) % BaselineBanks
		if banks[bank] {
			conflicts++
		}
		banks[bank] = true
	}
	if in.Op.HasDst() && in.Dst.Valid() {
		b.m.StructWrites.Inc()
		b.m.BackingAccesses.Inc()
	}
	b.m.BankConflicts.Add(uint64(conflicts))
	return conflicts
}

// OnWriteback implements sim.Provider.
func (b *Baseline) OnWriteback(*sim.Warp, isa.Reg) {}

// OnWarpFinish implements sim.Provider.
func (b *Baseline) OnWarpFinish(*sim.Warp) {}

// Tick implements sim.Provider.
func (b *Baseline) Tick() {}

// Drained implements sim.Provider.
func (b *Baseline) Drained() bool { return true }

// Stats implements sim.Provider.
func (b *Baseline) Stats() *sim.ProviderStats { return b.m.Stats() }

// HotHints implements sim.HintedProvider: the full RF never gates issue
// and has no per-cycle machinery or writeback work.
func (b *Baseline) HotHints() sim.HotPathHints {
	return sim.HotPathHints{AlwaysIssuable: true, PassiveTick: true, PassiveWriteback: true}
}
