package rf

import (
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/sim"
)

// RFH models the compile-time managed register file hierarchy (Gebhart et
// al. [11]): a last-result file (LRF) capturing immediate producer-to-
// consumer forwarding, a small per-warp operand register file (ORF), and
// the full-size main register file (MRF) behind them. Reads and writes are
// classified by which level serves them; MRF traffic is the backing-store
// access count compared in Figure 3. The scheme is designed around the
// two-level warp scheduler (the experiments run it with
// sim.SchedTwoLevel, which is why its geomean trails the GTO baseline,
// §6.4).
type RFH struct {
	sm *sim.SM
	m  *sim.ProviderCounters

	// ORFEntries is the per-warp operand buffer capacity (8-entry
	// scratchpad in Figure 3's configuration).
	ORFEntries int

	lastDst []isa.Reg   // per warp: destination of the previous instruction
	orf     [][]isa.Reg // per warp: LRU list of buffered registers
}

// NewRFH builds the provider with the given per-warp ORF capacity.
func NewRFH(orfEntries int) *RFH { return &RFH{ORFEntries: orfEntries} }

// Name implements sim.Provider.
func (h *RFH) Name() string { return "rfh" }

// Attach implements sim.Provider.
func (h *RFH) Attach(sm *sim.SM) error {
	h.sm = sm
	h.m = sim.NewProviderCounters(sm.Metrics)
	h.lastDst = make([]isa.Reg, len(sm.Warps))
	for i := range h.lastDst {
		h.lastDst[i] = isa.NoReg
	}
	h.orf = make([][]isa.Reg, len(sm.Warps))
	return nil
}

// CanIssue implements sim.Provider: the hierarchy never blocks issue.
func (h *RFH) CanIssue(*sim.Warp) bool { return true }

// orfHit reports whether r is buffered for warp w, refreshing LRU order.
func (h *RFH) orfHit(w int, r isa.Reg) bool {
	lst := h.orf[w]
	for i, x := range lst {
		if x == r {
			copy(lst[1:i+1], lst[:i])
			lst[0] = r
			return true
		}
	}
	return false
}

// orfInsert buffers r for warp w, spilling the LRU entry to the MRF.
func (h *RFH) orfInsert(w int, r isa.Reg) {
	if h.orfHit(w, r) {
		return
	}
	lst := h.orf[w]
	if len(lst) < h.ORFEntries {
		h.orf[w] = append([]isa.Reg{r}, lst...)
		return
	}
	// Evict LRU to the main register file.
	h.m.MRFAccesses.Inc()
	h.m.BackingAccesses.Inc()
	copy(lst[1:], lst[:len(lst)-1])
	lst[0] = r
}

// OnIssue classifies each operand access by hierarchy level.
func (h *RFH) OnIssue(w *sim.Warp, info *exec.StepInfo) int {
	in := info.Insn
	for i := 0; i < in.Op.NumSrc(); i++ {
		r := in.Src[i]
		if !r.Valid() {
			continue
		}
		h.m.StructReads.Inc()
		switch {
		case r == h.lastDst[w.ID]:
			h.m.LRFAccesses.Inc()
		case h.orfHit(w.ID, r):
			h.m.ORFAccesses.Inc()
		default:
			h.m.MRFAccesses.Inc()
			h.m.BackingAccesses.Inc()
			h.orfInsert(w.ID, r)
		}
	}
	if in.Op.HasDst() && in.Dst.Valid() {
		h.m.StructWrites.Inc()
		// Writes land in the ORF (compiler-allocated); eviction later
		// costs an MRF access.
		h.orfInsert(w.ID, in.Dst)
		h.lastDst[w.ID] = in.Dst
	} else {
		h.lastDst[w.ID] = isa.NoReg
	}
	return 0
}

// OnWriteback implements sim.Provider.
func (h *RFH) OnWriteback(*sim.Warp, isa.Reg) {}

// OnWarpFinish implements sim.Provider.
func (h *RFH) OnWarpFinish(w *sim.Warp) { h.orf[w.ID] = nil }

// Tick implements sim.Provider.
func (h *RFH) Tick() {}

// Drained implements sim.Provider.
func (h *RFH) Drained() bool { return true }

// Stats implements sim.Provider.
func (h *RFH) Stats() *sim.ProviderStats { return h.m.Stats() }

// HotHints implements sim.HintedProvider: RFH never gates issue and has
// no per-cycle machinery or writeback work.
func (h *RFH) HotHints() sim.HotPathHints {
	return sim.HotPathHints{AlwaysIssuable: true, PassiveTick: true, PassiveWriteback: true}
}
