package events

import (
	"fmt"
	"sort"
	"strings"
)

// Report is the in-process analysis of a recorded run: a stall breakdown
// that tiles the run's issue slots exactly, preload latency and hiding
// statistics (the paper's §4.2/§6 claim that preloads issued early
// enough cost no issue slots), and the regions whose staging the machine
// waited on most.
type Report struct {
	Cycles     uint64
	Schedulers int

	// IssueSlots = Cycles * Schedulers; Issued + sum(Stalls) must equal
	// it exactly (TilesExactly) — every slot is either an issue or one
	// attributed stall.
	IssueSlots uint64
	Issued     uint64
	Stalls     [NumStallReasons]uint64

	// Preload spans (issue -> fill).
	Preloads   uint64
	FillsBySrc [NumPreloadSrcs]uint64
	LatencySum uint64
	LatencyMax uint64

	// Region instances and preload hiding. A preloading span is hidden
	// to the extent the warp's scheduler group kept issuing (from other
	// warps) while the inputs streamed in: HiddenCycles counts span
	// cycles with an issue, FullyHidden the spans whose group never
	// stalled during staging.
	RegionInstances int
	PreloadSpans    int
	PreloadCycles   uint64
	HiddenCycles    uint64
	FullyHidden     int

	// TopRegions ranks regions by the capacity-stall cycles attributed
	// to them (the stalled warp's next activation), descending.
	TopRegions []RegionStall
}

// RegionStall is one region's contribution to capacity stalls.
type RegionStall struct {
	Region      int
	StallCycles uint64
	Activations uint64
}

// TilesExactly reports whether the stall breakdown accounts for every
// issue slot of the run — the analyzer's core invariant.
func (r *Report) TilesExactly() bool {
	total := r.Issued
	for _, s := range r.Stalls {
		total += s
	}
	return total == r.IssueSlots
}

// HidingRate returns the fraction of preloading-span cycles overlapped
// by useful issue (0 when no preloading occurred).
func (r *Report) HidingRate() float64 {
	if r.PreloadCycles == 0 {
		return 0
	}
	return float64(r.HiddenCycles) / float64(r.PreloadCycles)
}

// span is one region instance's preloading interval (start exclusive,
// end inclusive: the transition events' cycles).
type span struct {
	start, end uint64
	region     int
}

// activation marks a region instance beginning (for capacity-stall
// attribution: a stalled warp waits for its *next* activation).
type activation struct {
	cycle  uint64
	region int
}

// Analyze computes a Report from a recorded run. cycles and schedulers
// come from the finished simulation (sim.Stats.Cycles, Cfg.Schedulers);
// the recorder must have kept MaskSched for the breakdown to tile and
// MaskStates/MaskPreloads for the region and hiding sections.
func Analyze(rec *Recorder, cycles uint64, schedulers int) *Report {
	rep := &Report{
		Cycles:     cycles,
		Schedulers: schedulers,
		IssueSlots: cycles * uint64(schedulers),
	}
	if rec == nil {
		return rep
	}

	// Per-group cycles with no issue (in cycle order, for binary search),
	// per-warp capacity stalls and activation/preloading span tracking.
	groupStalls := make([][]uint64, schedulers)
	type warpTrack struct {
		phase        Phase
		preloadStart uint64
		preloading   bool
		region       int
		activations  []activation
		spans        []span
	}
	warps := map[int]*warpTrack{}
	track := func(w int) *warpTrack {
		t := warps[w]
		if t == nil {
			t = &warpTrack{region: -1}
			warps[w] = t
		}
		return t
	}
	type capStall struct {
		cycle uint64
		warp  int
	}
	var capStalls []capStall
	pendingFill := map[uint64]uint64{} // (warp,reg) -> issue cycle
	regionActs := map[int]uint64{}

	rec.ForEach(func(e Event) {
		switch e.Kind {
		case KindIssue:
			rep.Issued++
		case KindStall:
			reason := StallReason(e.A)
			rep.Stalls[reason]++
			g := int(e.B)
			if g < schedulers {
				groupStalls[g] = append(groupStalls[g], e.Cycle)
			}
			if reason == StallCapacity && e.Warp >= 0 {
				capStalls = append(capStalls, capStall{e.Cycle, int(e.Warp)})
			}
		case KindWarpState:
			t := track(int(e.Warp))
			ph := Phase(e.A)
			switch ph {
			case PhasePreloading:
				t.preloadStart, t.preloading = e.Cycle, true
				t.activations = append(t.activations, activation{e.Cycle, e.Region()})
				regionActs[e.Region()]++
				rep.RegionInstances++
			case PhaseActive:
				if t.preloading {
					t.spans = append(t.spans, span{t.preloadStart, e.Cycle, t.region})
					t.preloading = false
				} else if t.phase == PhaseInactive {
					// Immediate activation: zero preloads needed.
					t.activations = append(t.activations, activation{e.Cycle, e.Region()})
					regionActs[e.Region()]++
					rep.RegionInstances++
				}
			default:
				t.preloading = false
			}
			t.phase, t.region = ph, e.Region()
		case KindPreloadIssue:
			pendingFill[uint64(e.Warp)<<32|uint64(e.Arg)] = e.Cycle
		case KindPreloadFill:
			rep.Preloads++
			rep.FillsBySrc[PreloadSrc(e.A)]++
			key := uint64(e.Warp) << 32 | uint64(e.Arg)
			if issued, ok := pendingFill[key]; ok {
				delete(pendingFill, key)
				lat := e.Cycle - issued
				rep.LatencySum += lat
				if lat > rep.LatencyMax {
					rep.LatencyMax = lat
				}
			}
		}
	})

	// Hiding: for each preloading span, cycles where the warp's group
	// still issued = span length minus the group's stalls inside it.
	for w, t := range warps {
		g := w % schedulers
		if g < 0 || g >= schedulers {
			continue
		}
		stalls := groupStalls[g]
		for _, sp := range t.spans {
			length := sp.end - sp.start
			if length == 0 {
				rep.PreloadSpans++
				rep.FullyHidden++
				continue
			}
			lo := sort.Search(len(stalls), func(i int) bool { return stalls[i] > sp.start })
			hi := sort.Search(len(stalls), func(i int) bool { return stalls[i] > sp.end })
			stalled := uint64(hi - lo)
			if stalled > length {
				stalled = length
			}
			rep.PreloadSpans++
			rep.PreloadCycles += length
			rep.HiddenCycles += length - stalled
			if stalled == 0 {
				rep.FullyHidden++
			}
		}
	}

	// Attribute each capacity stall to the region the warp stages next.
	regionStalls := map[int]uint64{}
	for _, cs := range capStalls {
		t := warps[cs.warp]
		if t == nil || len(t.activations) == 0 {
			continue
		}
		acts := t.activations
		i := sort.Search(len(acts), func(i int) bool { return acts[i].cycle >= cs.cycle })
		if i == len(acts) {
			i-- // warp never re-activated: charge its last region
		}
		regionStalls[acts[i].region]++
	}
	for id, n := range regionStalls {
		rep.TopRegions = append(rep.TopRegions, RegionStall{id, n, regionActs[id]})
	}
	sort.Slice(rep.TopRegions, func(i, j int) bool {
		a, b := rep.TopRegions[i], rep.TopRegions[j]
		if a.StallCycles != b.StallCycles {
			return a.StallCycles > b.StallCycles
		}
		return a.Region < b.Region
	})
	return rep
}

// Render formats the report; topN clips the region ranking (0 = 5).
func (r *Report) Render(topN int) string {
	if topN <= 0 {
		topN = 5
	}
	var b strings.Builder
	pct := func(n uint64) float64 {
		if r.IssueSlots == 0 {
			return 0
		}
		return 100 * float64(n) / float64(r.IssueSlots)
	}
	fmt.Fprintf(&b, "stall attribution   %d schedulers x %d cycles = %d issue slots\n",
		r.Schedulers, r.Cycles, r.IssueSlots)
	fmt.Fprintf(&b, "  issued            %10d  %5.1f%%\n", r.Issued, pct(r.Issued))
	for reason := NumStallReasons - 1; ; reason-- {
		if n := r.Stalls[reason]; n > 0 {
			fmt.Fprintf(&b, "  %-17s %10d  %5.1f%%\n", reason.String(), n, pct(n))
		}
		if reason == 0 {
			break
		}
	}
	if !r.TilesExactly() {
		total := r.Issued
		for _, s := range r.Stalls {
			total += s
		}
		fmt.Fprintf(&b, "  WARNING: breakdown covers %d of %d slots\n", total, r.IssueSlots)
	}
	if r.Preloads > 0 {
		fmt.Fprintf(&b, "preloads            %d fills:", r.Preloads)
		for src := PreloadSrc(0); src < NumPreloadSrcs; src++ {
			fmt.Fprintf(&b, " %s %.1f%%", src, 100*float64(r.FillsBySrc[src])/float64(r.Preloads))
			if src != NumPreloadSrcs-1 {
				b.WriteByte(',')
			}
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "preload latency     mean %.1f cycles, max %d\n",
			float64(r.LatencySum)/float64(r.Preloads), r.LatencyMax)
	}
	if r.RegionInstances > 0 {
		fmt.Fprintf(&b, "preload hiding      %.1f%% of %d preloading cycles overlapped an issue; %d/%d spans fully hidden (%d region instances)\n",
			100*r.HidingRate(), r.PreloadCycles, r.FullyHidden, r.PreloadSpans, r.RegionInstances)
	}
	if len(r.TopRegions) > 0 {
		fmt.Fprintf(&b, "top regions by capacity stalls\n")
		for i, reg := range r.TopRegions {
			if i >= topN {
				break
			}
			fmt.Fprintf(&b, "  region %-4d %10d stall cycles  %6d activations\n",
				reg.Region, reg.StallCycles, reg.Activations)
		}
	}
	return b.String()
}
