package events_test

import (
	"fmt"
	"testing"

	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/trace"
)

// tracedRun simulates one benchmark under a scheme with every event
// family recorded, via the same path the CLI uses, returning the SM for
// its metrics registry.
func tracedRun(t *testing.T, scheme experiments.Scheme) (*trace.Result, *sim.SM) {
	t.Helper()
	smv, _, err := experiments.BuildSM("nw", scheme, experiments.SimSetup{
		Capacity: experiments.DefaultCapacity, Warps: 8, MaxCycles: 5_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := trace.Run(smv, 50, events.MaskAll)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles == 0 || res.Events == nil {
		t.Fatal("empty traced run")
	}
	return res, smv
}

func metric(t *testing.T, smv *sim.SM, name string) uint64 {
	t.Helper()
	v, ok := smv.Metrics.Value(name)
	if !ok {
		t.Fatalf("metric %q not registered", name)
	}
	return v
}

// TestSchedEventsReconcileAcrossSchemes proves, for every scheme, the
// analyzer's core invariant against independently-maintained counters:
// issue/stall events tile Cycles x Schedulers exactly and agree with the
// per-group issue_cycles/stall_cycles metrics the scheduler loop bumps.
func TestSchedEventsReconcileAcrossSchemes(t *testing.T) {
	for _, scheme := range []experiments.Scheme{
		experiments.SchemeBaseline,
		experiments.SchemeBaseline2L,
		experiments.SchemeRFV,
		experiments.SchemeRFH,
		experiments.SchemeRegLess,
		experiments.SchemeRegLessNC,
	} {
		t.Run(string(scheme), func(t *testing.T) {
			res, smv := tracedRun(t, scheme)
			rec := res.Events
			schedulers := rec.NumShards()

			var mIssued, mStalled uint64
			for g := 0; g < schedulers; g++ {
				mIssued += metric(t, smv, fmt.Sprintf("sim/sched/g%d/issue_cycles", g))
				mStalled += metric(t, smv, fmt.Sprintf("sim/sched/g%d/stall_cycles", g))
			}
			if got := rec.Count(events.KindIssue); got != mIssued {
				t.Errorf("issue events %d != issue_cycles metric %d", got, mIssued)
			}
			if got := rec.Count(events.KindStall); got != mStalled {
				t.Errorf("stall events %d != stall_cycles metric %d", got, mStalled)
			}

			rep := events.Analyze(rec, res.Stats.Cycles, schedulers)
			if !rep.TilesExactly() {
				var total uint64
				for _, s := range rep.Stalls {
					total += s
				}
				t.Errorf("stall breakdown does not tile: issued %d + stalls %d != %d slots",
					rep.Issued, total, rep.IssueSlots)
			}
			if rep.Issued != mIssued {
				t.Errorf("report issued %d != metric %d", rep.Issued, mIssued)
			}
		})
	}
}

// TestNonRegLessSchemesEmitNoStagingEvents: schemes without a capacity
// manager must produce scheduler events only — no phantom RegLess spans.
func TestNonRegLessSchemesEmitNoStagingEvents(t *testing.T) {
	for _, scheme := range []experiments.Scheme{
		experiments.SchemeBaseline,
		experiments.SchemeRFV,
		experiments.SchemeRFH,
	} {
		t.Run(string(scheme), func(t *testing.T) {
			res, _ := tracedRun(t, scheme)
			rec := res.Events
			for _, k := range []events.Kind{
				events.KindWarpState, events.KindPreloadIssue, events.KindPreloadFill,
				events.KindOSUAlloc, events.KindOSUActivate, events.KindOSUDemote,
				events.KindOSUEvict, events.KindOSUErase, events.KindCompress,
			} {
				if n := rec.Count(k); n != 0 {
					t.Errorf("%s emitted %d %v events", scheme, n, k)
				}
			}
			if rec.Count(events.KindExit) == 0 {
				t.Error("no exit events: timelines cannot mark finished warps")
			}
		})
	}
}

// TestRegLessEventsReconcileWithFig17 checks the preload-span events
// against the provider's Figure 17 source counters, the capacity stall
// attribution against the provider's own stall count, and the staging
// lifecycle's internal consistency.
func TestRegLessEventsReconcileWithFig17(t *testing.T) {
	res, smv := tracedRun(t, experiments.SchemeRegLess)
	rec := res.Events
	rep := events.Analyze(rec, res.Stats.Cycles, rec.NumShards())

	for src, name := range map[events.PreloadSrc]string{
		events.SrcOSU:        "provider/preload_from_osu",
		events.SrcCompressor: "provider/preload_from_compressor",
		events.SrcL1:         "provider/preload_from_l1",
		events.SrcL2DRAM:     "provider/preload_from_l2dram",
	} {
		if got, want := rep.FillsBySrc[src], metric(t, smv, name); got != want {
			t.Errorf("fills from %v = %d, metric %s = %d", src, got, name, want)
		}
	}
	if issued, filled := rec.Count(events.KindPreloadIssue), rec.Count(events.KindPreloadFill); issued != filled {
		t.Errorf("preload spans leak: %d issued, %d filled", issued, filled)
	}
	if rep.Preloads == 0 || rep.RegionInstances == 0 {
		t.Fatalf("regless run staged nothing: %+v", rep)
	}

	// Each capacity-attributed slot required at least one provider
	// rejection that cycle, so the attribution is bounded by the
	// provider-reject count.
	if capStalls, rejects := rep.Stalls[events.StallCapacity], res.Stats.IssueStalls; capStalls > rejects {
		t.Errorf("capacity stalls %d exceed provider rejects %d", capStalls, rejects)
	}

	// Every capacity stall lands in some region's tally.
	var attributed uint64
	for _, reg := range rep.TopRegions {
		attributed += reg.StallCycles
	}
	if attributed != rep.Stalls[events.StallCapacity] {
		t.Errorf("region attribution %d != capacity stalls %d", attributed, rep.Stalls[events.StallCapacity])
	}

	// OSU line lifecycle: every allocation is eventually erased or still
	// resident at exit; erases+evicts cannot exceed allocs+activations.
	allocs := rec.Count(events.KindOSUAlloc)
	erases := rec.Count(events.KindOSUErase)
	if allocs == 0 || erases == 0 {
		t.Errorf("OSU lifecycle missing: %d allocs, %d erases", allocs, erases)
	}
	if erases > allocs {
		t.Errorf("more erases (%d) than allocations (%d)", erases, allocs)
	}
}
