package events

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceMeta labels an exported trace.
type TraceMeta struct {
	Bench      string
	Scheme     string
	Warps      int
	Schedulers int
	Cycles     uint64
	// SM is this recording's SM index on a multi-SM chip (0 for
	// single-SM runs); WarpIDBase is the SM's first global warp ID.
	// Warp events already carry global IDs — these place the SM's
	// tracks in the right process group and name them.
	SM         int
	WarpIDBase int
	// PatternNames optionally names compressor pattern IDs (A field of
	// KindCompress events); unnamed IDs render as "pat<N>".
	PatternNames []string
}

// pidStride spaces the per-SM process-ID blocks in a chip export: SM i
// owns pids [1+i*pidStride, 5+i*pidStride], so Perfetto's process
// groups cluster by SM.
const pidStride = 8

// Track process IDs in the exported trace. Perfetto renders each pid as
// a collapsible process group; tids within it are rows.
const (
	pidScheduler = 1 // per-group issue/stall spans
	pidWarps     = 2 // per-warp capacity-phase and barrier spans
	pidPreloads  = 3 // per-warp preload (issue -> fill) spans
	pidOSU       = 4 // per-shard occupancy counters
	pidCompress  = 5 // per-shard compressor decisions (instants)
)

// TraceEvent is one Chrome trace-event JSON object. Ts/Dur are in
// microseconds; the cycle-level exporters map one simulated cycle to
// 1 us so Perfetto's time axis reads directly in cycles, while the
// service-level exporter (internal/obs) records real wall microseconds.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace streams one Chrome trace-event JSON document: header
// (displayTimeUnit + otherData), comma-separated events, footer. Both
// the cycle-level exporters here and the service-level span exporter in
// internal/obs write through it, so every trace this repo produces opens
// in the same viewer (ui.perfetto.dev or chrome://tracing).
type ChromeTrace struct {
	w     *bufio.Writer
	first bool
	err   error
}

// NewChromeTrace writes the document header. otherData must be a
// rendered JSON object describing the trace ("" writes {}).
func NewChromeTrace(w io.Writer, otherData string) *ChromeTrace {
	bw := bufio.NewWriterSize(w, 1<<16)
	if otherData == "" {
		otherData = "{}"
	}
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\n\"otherData\":%s,\n\"traceEvents\":[\n", otherData)
	return &ChromeTrace{w: bw, first: true}
}

// Emit appends one event. Errors stick; Close reports the first.
func (ct *ChromeTrace) Emit(ev TraceEvent) {
	if ct.err != nil {
		return
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		ct.err = err
		return
	}
	if !ct.first {
		ct.w.WriteString(",\n")
	}
	ct.first = false
	_, ct.err = ct.w.Write(raw)
}

// Meta appends a metadata event (process/thread naming).
func (ct *ChromeTrace) Meta(pid, tid int, key, value string, args map[string]any) {
	if args == nil {
		args = map[string]any{}
	}
	args["name"] = value
	ct.Emit(TraceEvent{Name: key, Ph: "M", Pid: pid, Tid: tid, Args: args})
}

// Close writes the document footer and flushes, returning the first
// error encountered by any Emit or write.
func (ct *ChromeTrace) Close() error {
	ct.w.WriteString("\n]}\n")
	if ct.err != nil {
		return ct.err
	}
	return ct.w.Flush()
}

// WritePerfetto exports the recording as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing: scheduler
// groups as merged issue/stall spans, warps as capacity-phase tracks,
// preload spans, OSU occupancy counters, and compressor decisions.
func WritePerfetto(w io.Writer, rec *Recorder, meta TraceMeta) error {
	return WriteChipPerfetto(w, []*Recorder{rec}, []TraceMeta{meta})
}

// WriteChipPerfetto exports one recording per SM into a single trace:
// each SM's five track families live in their own process-ID block, so
// Perfetto's process groups cluster by SM and warp tracks carry global
// warp IDs. metas[i] labels recs[i]; otherData comes from metas[0].
func WriteChipPerfetto(w io.Writer, recs []*Recorder, metas []TraceMeta) error {
	if len(recs) == 0 || len(recs) != len(metas) {
		return fmt.Errorf("events: %d recorders with %d metas", len(recs), len(metas))
	}
	m0 := metas[0]
	other := fmt.Sprintf("{\"bench\":%q,\"scheme\":%q,\"sms\":%d,\"warps\":%d,\"schedulers\":%d,\"cycles\":%d,\"unit\":\"1us = 1 cycle\"}",
		m0.Bench, m0.Scheme, len(recs), m0.Warps, m0.Schedulers, m0.Cycles)
	pw := NewChromeTrace(w, other)

	for i, rec := range recs {
		meta := metas[i]
		base := meta.SM * pidStride
		prefix := ""
		if len(recs) > 1 {
			prefix = fmt.Sprintf("SM%d ", meta.SM)
		}
		pw.Meta(base+pidScheduler, 0, "process_name", prefix+"scheduler groups", map[string]any{"sort_index": base + pidScheduler})
		pw.Meta(base+pidWarps, 0, "process_name", prefix+"warp states", map[string]any{"sort_index": base + pidWarps})
		pw.Meta(base+pidPreloads, 0, "process_name", prefix+"preloads", map[string]any{"sort_index": base + pidPreloads})
		pw.Meta(base+pidOSU, 0, "process_name", prefix+"osu occupancy", map[string]any{"sort_index": base + pidOSU})
		pw.Meta(base+pidCompress, 0, "process_name", prefix+"compressor", map[string]any{"sort_index": base + pidCompress})
		for g := 0; g < rec.NumShards(); g++ {
			pw.Meta(base+pidScheduler, g, "thread_name", fmt.Sprintf("group %d", g), nil)
			pw.Meta(base+pidOSU, g, "thread_name", fmt.Sprintf("shard %d", g), nil)
			pw.Meta(base+pidCompress, g, "thread_name", fmt.Sprintf("shard %d", g), nil)
		}
		for w := meta.WarpIDBase; w < meta.WarpIDBase+meta.Warps; w++ {
			pw.Meta(base+pidWarps, w, "thread_name", fmt.Sprintf("w%02d", w), nil)
			pw.Meta(base+pidPreloads, w, "thread_name", fmt.Sprintf("w%02d", w), nil)
		}

		if rec != nil {
			for s := 0; s <= rec.NumShards(); s++ {
				exportShard(pw, rec, s, meta, base)
			}
		}
	}

	return pw.Close()
}

// exportShard walks one shard's buffer once, maintaining the small
// per-track run/span state needed to merge per-cycle events into spans.
func exportShard(pw *ChromeTrace, rec *Recorder, s int, meta TraceMeta, pidBase int) {
	// Scheduler track: merge consecutive same-labelled cycles into spans.
	type run struct {
		name    string
		isStall bool
		start   uint64
		end     uint64 // last cycle included
		n       int
	}
	var sched *run
	flushSched := func() {
		if sched == nil {
			return
		}
		args := map[string]any{"cycles": sched.n}
		ph := "issue"
		if sched.isStall {
			ph = "stall"
		}
		args["kind"] = ph
		pw.Emit(TraceEvent{Name: sched.name, Ph: "X", Ts: sched.start,
			Dur: sched.end - sched.start + 1, Pid: pidBase + pidScheduler, Tid: s, Args: args})
		sched = nil
	}
	schedStep := func(name string, isStall bool, cycle uint64) {
		if sched != nil && sched.name == name && sched.isStall == isStall && cycle == sched.end+1 {
			sched.end = cycle
			sched.n++
			return
		}
		flushSched()
		sched = &run{name: name, isStall: isStall, start: cycle, end: cycle, n: 1}
	}

	// Warp-state spans: one open phase span per warp on this shard.
	type openSpan struct {
		ph     Phase
		region int
		start  uint64
	}
	phases := map[int]*openSpan{}
	flushPhase := func(w int, until uint64) {
		sp := phases[w]
		if sp == nil {
			return
		}
		delete(phases, w)
		if sp.ph == PhaseInactive || sp.ph == PhaseFinished {
			return // gaps read as inactive; don't clutter the track
		}
		args := map[string]any{}
		if sp.region >= 0 {
			args["region"] = sp.region
		}
		dur := until - sp.start
		if dur == 0 {
			dur = 1
		}
		pw.Emit(TraceEvent{Name: sp.ph.String(), Ph: "X", Ts: sp.start,
			Dur: dur, Pid: pidBase + pidWarps, Tid: w, Args: args})
	}
	barriers := map[int]uint64{}
	preloads := map[uint64]uint64{} // (warp,reg) -> issue cycle

	// OSU occupancy counter, emitted on change (coalesced per cycle).
	active, evictable := 0, 0
	lastCounterCycle := ^uint64(0)
	dirtyCounter := false
	flushCounter := func(cycle uint64) {
		if !dirtyCounter || lastCounterCycle == ^uint64(0) {
			return
		}
		pw.Emit(TraceEvent{Name: "osu lines", Ph: "C", Ts: lastCounterCycle,
			Pid: pidBase + pidOSU, Tid: s, Args: map[string]any{"active": active, "evictable": evictable}})
		dirtyCounter = false
	}
	bumpCounter := func(cycle uint64, dActive, dEvictable int) {
		if cycle != lastCounterCycle {
			flushCounter(cycle)
			lastCounterCycle = cycle
		}
		active += dActive
		evictable += dEvictable
		dirtyCounter = true
	}

	patName := func(id uint8) string {
		if int(id) < len(meta.PatternNames) {
			return meta.PatternNames[id]
		}
		return fmt.Sprintf("pat%d", id)
	}

	var lastCycle uint64
	rec.ShardEvents(s, func(e Event) {
		lastCycle = e.Cycle
		switch e.Kind {
		case KindIssue:
			schedStep(fmt.Sprintf("w%02d", e.Warp), false, e.Cycle)
		case KindStall:
			schedStep(StallReason(e.A).String(), true, e.Cycle)
		case KindWarpState:
			w := int(e.Warp)
			flushPhase(w, e.Cycle)
			phases[w] = &openSpan{ph: Phase(e.A), region: e.Region(), start: e.Cycle}
		case KindBarrier:
			w := int(e.Warp)
			if e.A == 1 {
				barriers[w] = e.Cycle
			} else if start, ok := barriers[w]; ok {
				delete(barriers, w)
				dur := e.Cycle - start
				if dur == 0 {
					dur = 1
				}
				pw.Emit(TraceEvent{Name: "barrier", Ph: "X", Ts: start, Dur: dur,
					Pid: pidBase + pidWarps, Tid: w, Args: map[string]any{"kind": "barrier"}})
			}
		case KindExit:
			flushPhase(int(e.Warp), e.Cycle)
		case KindPreloadIssue:
			preloads[uint64(e.Warp)<<32|uint64(e.Arg)] = e.Cycle
		case KindPreloadFill:
			key := uint64(e.Warp)<<32 | uint64(e.Arg)
			if start, ok := preloads[key]; ok {
				delete(preloads, key)
				dur := e.Cycle - start
				if dur == 0 {
					dur = 1
				}
				pw.Emit(TraceEvent{Name: fmt.Sprintf("R%d", e.Arg), Ph: "X", Ts: start,
					Dur: dur, Pid: pidBase + pidPreloads, Tid: int(e.Warp),
					Args: map[string]any{"src": PreloadSrc(e.A).String()}})
			}
		case KindOSUAlloc:
			bumpCounter(e.Cycle, 1, 0)
		case KindOSUActivate:
			if LineState(e.A) != LineActive {
				bumpCounter(e.Cycle, 1, -1)
			}
		case KindOSUDemote:
			bumpCounter(e.Cycle, -1, 1)
		case KindOSUEvict:
			bumpCounter(e.Cycle, 0, -1)
		case KindOSUErase:
			if LineState(e.A) == LineActive {
				bumpCounter(e.Cycle, -1, 0)
			} else {
				bumpCounter(e.Cycle, 0, -1)
			}
		case KindCompress:
			name := patName(e.A)
			if e.Arg == 0 {
				name = "miss"
			}
			pw.Emit(TraceEvent{Name: name, Ph: "i", Ts: e.Cycle, S: "t",
				Pid: pidBase + pidCompress, Tid: s, Args: map[string]any{"warp": e.Warp}})
		}
	})
	flushSched()
	flushCounter(lastCycle + 1)
	for w := range phases {
		flushPhase(w, lastCycle)
	}
}
