// Package events is the simulation's structured event recorder: a
// cycle-stamped, typed log of what the machine did, feeding the Perfetto
// exporter, the stall-attribution analyzer, and the warp-state timeline.
//
// The design follows internal/metrics: a nil *Recorder is a valid no-op
// (every emit method checks the receiver), so instrumented code calls
// recorder methods unconditionally and pays one predictable branch when
// tracing is off. When tracing is on, events append to per-shard chunked
// buffers — no per-event allocation, no locking (each shard's emitters
// run on the single simulation goroutine), no reordering (cycles only
// grow). A Mask selects event families so the timeline tracer can record
// warp states without paying for per-cycle scheduler events.
//
// Events are 24-byte structs with kind-specific payload fields; the
// emitting layer defines the encoding and the consumers in this package
// (Analyze, WritePerfetto) and in internal/trace decode it:
//
//	Kind          Warp       A             B        Arg
//	Issue         issuer     -             group    global insn index
//	Stall         culprit†   StallReason   group    -
//	WarpState     warp       Phase         shard    region (^0 = none)
//	Barrier       warp       1=enter       group    -
//	Exit          warp       -             group    -
//	PreloadIssue  warp       -             shard    register
//	PreloadFill   warp       PreloadSrc    shard    register
//	OSU*          line warp  LineState     shard    register
//	Compress      evictee    Pattern id    shard    1 = compressor hit
//	L1Access      -1         bit0 hit,     -        line address
//	                         bit1 write
//
// † the stalled warp closest to issuing, -1 when the group is idle.
package events

import "sort"

// Kind identifies an event type.
type Kind uint8

const (
	// KindIssue: a scheduler group issued one instruction.
	KindIssue Kind = iota
	// KindStall: a scheduler group had no eligible warp this cycle.
	KindStall
	// KindWarpState: a capacity-manager state transition (RegLess).
	KindWarpState
	// KindBarrier: a warp arrived at (A=1) or left (A=0) a CTA barrier.
	KindBarrier
	// KindExit: a warp retired.
	KindExit
	// KindPreloadIssue: a region activation enqueued one input fetch.
	KindPreloadIssue
	// KindPreloadFill: the input fetch resolved (A tells from where).
	KindPreloadFill
	// KindOSUAlloc: an OSU line was allocated for (warp, reg).
	KindOSUAlloc
	// KindOSUActivate: an evictable resident line was re-activated
	// (A is the state it was found in).
	KindOSUActivate
	// KindOSUDemote: an active line became evictable (A: clean/dirty).
	KindOSUDemote
	// KindOSUEvict: a dirty line was displaced toward the L1.
	KindOSUEvict
	// KindOSUErase: a line was dropped (A is its state at erase).
	KindOSUErase
	// KindCompress: the compressor classified an evicted value
	// (A = compress.Pattern, Arg = 1 on a hit).
	KindCompress
	// KindL1Access: the backing-store L1 accepted an access.
	KindL1Access

	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindIssue:
		return "issue"
	case KindStall:
		return "stall"
	case KindWarpState:
		return "warp-state"
	case KindBarrier:
		return "barrier"
	case KindExit:
		return "exit"
	case KindPreloadIssue:
		return "preload-issue"
	case KindPreloadFill:
		return "preload-fill"
	case KindOSUAlloc:
		return "osu-alloc"
	case KindOSUActivate:
		return "osu-activate"
	case KindOSUDemote:
		return "osu-demote"
	case KindOSUEvict:
		return "osu-evict"
	case KindOSUErase:
		return "osu-erase"
	case KindCompress:
		return "compress"
	case KindL1Access:
		return "l1-access"
	default:
		return "unknown"
	}
}

// StallReason classifies why a scheduler group issued nothing. Values are
// ordered by proximity to issue: when several warps are blocked for
// different reasons, attribution charges the cycle to the highest reason
// present (the warp that came closest to issuing).
type StallReason uint8

const (
	// StallIdle: no live warp in the group (all finished or none exist).
	StallIdle StallReason = iota
	// StallBarrier: the nearest warp waits at a CTA barrier.
	StallBarrier
	// StallConflict: the nearest warp is paying an issue penalty (OSU
	// bank conflict, metadata instructions, two-level promotion refill).
	StallConflict
	// StallScoreboard: blocked on a pending ALU/SFU/shared write.
	StallScoreboard
	// StallMemory: blocked on an outstanding global-load destination.
	StallMemory
	// StallSFU: the group's SFU issue interval has not elapsed.
	StallSFU
	// StallLSU: the load-store queue is full.
	StallLSU
	// StallCapacity: the provider refused issue (RegLess: the warp's
	// region is not staged — the paper's capacity cost).
	StallCapacity

	// NumStallReasons sizes per-reason tables.
	NumStallReasons
)

// String names the reason.
func (r StallReason) String() string {
	switch r {
	case StallIdle:
		return "idle"
	case StallBarrier:
		return "barrier"
	case StallConflict:
		return "conflict"
	case StallScoreboard:
		return "scoreboard"
	case StallMemory:
		return "memory"
	case StallSFU:
		return "sfu"
	case StallLSU:
		return "lsu"
	case StallCapacity:
		return "capacity"
	default:
		return "unknown"
	}
}

// Phase mirrors the capacity manager's warp states (cm.State values)
// without importing package cm from this leaf package.
type Phase uint8

const (
	PhaseInactive Phase = iota
	PhasePreloading
	PhaseActive
	PhaseDraining
	PhaseFinished
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseInactive:
		return "inactive"
	case PhasePreloading:
		return "preloading"
	case PhaseActive:
		return "active"
	case PhaseDraining:
		return "draining"
	default:
		return "finished"
	}
}

// LineState mirrors osu.State for OSU line events.
type LineState uint8

const (
	LineActive LineState = iota
	LineClean
	LineDirty
)

// String names the line state.
func (s LineState) String() string {
	switch s {
	case LineActive:
		return "active"
	case LineClean:
		return "clean"
	default:
		return "dirty"
	}
}

// PreloadSrc tells which level satisfied a preload — the provenance the
// paper's Figure 17 reports.
type PreloadSrc uint8

const (
	SrcOSU PreloadSrc = iota
	SrcCompressor
	SrcL1
	SrcL2DRAM

	// NumPreloadSrcs sizes per-source tables.
	NumPreloadSrcs
)

// String names the source.
func (s PreloadSrc) String() string {
	switch s {
	case SrcOSU:
		return "osu"
	case SrcCompressor:
		return "compressor"
	case SrcL1:
		return "L1"
	default:
		return "L2/DRAM"
	}
}

// Mask selects which event families a recorder keeps.
type Mask uint32

const (
	// MaskSched keeps per-cycle issue and stall-attribution events.
	MaskSched Mask = 1 << iota
	// MaskStates keeps warp state transitions, barriers, and exits.
	MaskStates
	// MaskPreloads keeps preload issue/fill spans.
	MaskPreloads
	// MaskOSU keeps OSU line lifecycle events.
	MaskOSU
	// MaskCompress keeps compressor pattern decisions.
	MaskCompress
	// MaskMem keeps backing-store L1 access events.
	MaskMem

	// MaskAll keeps everything.
	MaskAll = MaskSched | MaskStates | MaskPreloads | MaskOSU | MaskCompress | MaskMem
	// MaskTimeline is what the warp-state timeline needs.
	MaskTimeline = MaskStates
)

// NoRegion is the Arg encoding for "no region" in WarpState events.
const NoRegion = ^uint32(0)

// Event is one recorded occurrence. Field meaning is per-Kind (see the
// package comment); the struct is fixed-size so buffers are flat arrays.
type Event struct {
	Cycle uint64
	Arg   uint32
	Warp  int32
	Kind  Kind
	A     uint8
	B     uint8
}

// Region decodes a WarpState event's region (-1 when none).
func (e Event) Region() int {
	if e.Arg == NoRegion {
		return -1
	}
	return int(e.Arg)
}

// chunkEvents sizes buffer chunks: emits allocate only when a chunk
// fills (every 8192 events), keeping the hot path allocation-free.
const chunkEvents = 1 << 13

// shardBuf is an append-only chunked event buffer with a drain cursor.
type shardBuf struct {
	chunks [][]Event
	// drain cursor (Drain hands out each event exactly once).
	dChunk, dOff int
}

func (b *shardBuf) append(e Event) {
	n := len(b.chunks)
	if n == 0 || len(b.chunks[n-1]) == chunkEvents {
		b.chunks = append(b.chunks, make([]Event, 0, chunkEvents))
		n++
	}
	b.chunks[n-1] = append(b.chunks[n-1], e)
}

func (b *shardBuf) len() int {
	n := 0
	for _, c := range b.chunks {
		n += len(c)
	}
	return n
}

func (b *shardBuf) forEach(fn func(Event)) {
	for _, c := range b.chunks {
		for i := range c {
			fn(c[i])
		}
	}
}

// drain hands fn every event appended since the previous drain.
func (b *shardBuf) drain(fn func(Event)) {
	for ; b.dChunk < len(b.chunks); b.dChunk++ {
		c := b.chunks[b.dChunk]
		for ; b.dOff < len(c); b.dOff++ {
			fn(c[b.dOff])
		}
		if len(c) < chunkEvents {
			return // chunk may still grow; keep the cursor here
		}
		b.dOff = 0
	}
}

// Recorder collects events for one simulated SM. One buffer per shard
// (scheduler group) plus a trailing buffer for machine-global sources
// (the memory hierarchy) keeps appends cache-local and lock-free on the
// single simulation goroutine. The zero value of *Recorder (nil) is a
// valid disabled recorder.
type Recorder struct {
	mask   Mask
	cycle  uint64
	bufs   []shardBuf
	counts [numKinds]uint64
}

// NewRecorder builds a recorder for `shards` scheduler groups keeping
// the families in mask.
func NewRecorder(shards int, mask Mask) *Recorder {
	if shards < 1 {
		shards = 1
	}
	return &Recorder{mask: mask, bufs: make([]shardBuf, shards+1)}
}

// Enabled reports whether any family in m is recorded. Nil-safe; hot
// paths use it to skip argument computation when tracing is off.
func (r *Recorder) Enabled(m Mask) bool { return r != nil && r.mask&m != 0 }

// SetCycle stamps subsequent events; the simulator calls it once at the
// top of each cycle. Nil-safe.
func (r *Recorder) SetCycle(c uint64) {
	if r != nil {
		r.cycle = c
	}
}

// Cycle returns the current stamp.
func (r *Recorder) Cycle() uint64 {
	if r == nil {
		return 0
	}
	return r.cycle
}

// NumShards returns the per-shard buffer count (excluding the global
// buffer, which ShardEvents exposes at index NumShards()).
func (r *Recorder) NumShards() int {
	if r == nil {
		return 0
	}
	return len(r.bufs) - 1
}

// Len returns the total recorded event count.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.bufs {
		n += r.bufs[i].len()
	}
	return n
}

// Count returns how many events of kind k were recorded.
func (r *Recorder) Count(k Kind) uint64 {
	if r == nil {
		return 0
	}
	return r.counts[k]
}

// ForEach visits every event, shard-major (within a shard, events are in
// cycle order; across shards they are not interleaved).
func (r *Recorder) ForEach(fn func(Event)) {
	if r == nil {
		return
	}
	for i := range r.bufs {
		r.bufs[i].forEach(fn)
	}
}

// ShardEvents visits one shard's events in order; index NumShards()
// holds machine-global events (L1 accesses).
func (r *Recorder) ShardEvents(shard int, fn func(Event)) {
	if r == nil || shard < 0 || shard >= len(r.bufs) {
		return
	}
	r.bufs[shard].forEach(fn)
}

// tail returns the buffer's last n events in order.
func (b *shardBuf) tail(n int) []Event {
	out := make([]Event, 0, n)
	for ci := len(b.chunks) - 1; ci >= 0 && len(out) < n; ci-- {
		c := b.chunks[ci]
		for i := len(c) - 1; i >= 0 && len(out) < n; i-- {
			out = append(out, c[i])
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Tail returns the last n recorded events across all shards, ordered by
// cycle (events from the same cycle keep their per-shard order). It is
// the diagnostic bundle's "last K events" view; the scan is O(n *
// shards), independent of run length. Nil-safe.
func (r *Recorder) Tail(n int) []Event {
	if r == nil || n <= 0 {
		return nil
	}
	var cand []Event
	for i := range r.bufs {
		cand = append(cand, r.bufs[i].tail(n)...)
	}
	sort.SliceStable(cand, func(a, b int) bool { return cand[a].Cycle < cand[b].Cycle })
	if len(cand) > n {
		cand = cand[len(cand)-n:]
	}
	return cand
}

// Drain visits every event appended since the previous Drain, shard by
// shard (per-warp event order is preserved: all of a warp's events live
// in one shard's buffer). In-run consumers (the timeline tracer) call it
// each cycle.
func (r *Recorder) Drain(fn func(Event)) {
	if r == nil {
		return
	}
	for i := range r.bufs {
		r.bufs[i].drain(fn)
	}
}

func (r *Recorder) emit(shard int, e Event) {
	if shard < 0 || shard >= len(r.bufs)-1 {
		shard = len(r.bufs) - 1
	}
	e.Cycle = r.cycle
	r.bufs[shard].append(e)
	r.counts[e.Kind]++
}

// Issue records one issued instruction (gi = global instruction index).
func (r *Recorder) Issue(group, warp, gi int) {
	if !r.Enabled(MaskSched) {
		return
	}
	r.emit(group, Event{Kind: KindIssue, Warp: int32(warp), B: uint8(group), Arg: uint32(gi)})
}

// Stall records an empty issue slot with its attributed reason; warp is
// the blocked warp closest to issuing (-1 when the group is idle).
func (r *Recorder) Stall(group int, reason StallReason, warp int) {
	if !r.Enabled(MaskSched) {
		return
	}
	r.emit(group, Event{Kind: KindStall, Warp: int32(warp), A: uint8(reason), B: uint8(group)})
}

// State records a capacity-manager transition for a (global) warp.
func (r *Recorder) State(shard, warp int, ph Phase, region int) {
	if !r.Enabled(MaskStates) {
		return
	}
	arg := NoRegion
	if region >= 0 {
		arg = uint32(region)
	}
	r.emit(shard, Event{Kind: KindWarpState, Warp: int32(warp), A: uint8(ph), B: uint8(shard), Arg: arg})
}

// Barrier records a warp arriving at (enter) or leaving a CTA barrier.
func (r *Recorder) Barrier(group, warp int, enter bool) {
	if !r.Enabled(MaskStates) {
		return
	}
	var a uint8
	if enter {
		a = 1
	}
	r.emit(group, Event{Kind: KindBarrier, Warp: int32(warp), A: a, B: uint8(group)})
}

// Exit records a warp retiring.
func (r *Recorder) Exit(group, warp int) {
	if !r.Enabled(MaskStates) {
		return
	}
	r.emit(group, Event{Kind: KindExit, Warp: int32(warp), B: uint8(group)})
}

// PreloadIssue records one input fetch enqueued at region activation.
func (r *Recorder) PreloadIssue(shard, warp int, reg uint32) {
	if !r.Enabled(MaskPreloads) {
		return
	}
	r.emit(shard, Event{Kind: KindPreloadIssue, Warp: int32(warp), B: uint8(shard), Arg: reg})
}

// PreloadFill records the fetch resolving from src.
func (r *Recorder) PreloadFill(shard, warp int, reg uint32, src PreloadSrc) {
	if !r.Enabled(MaskPreloads) {
		return
	}
	r.emit(shard, Event{Kind: KindPreloadFill, Warp: int32(warp), A: uint8(src), B: uint8(shard), Arg: reg})
}

// OSULine records a line lifecycle event (kind one of the KindOSU*).
func (r *Recorder) OSULine(k Kind, shard, warp int, reg uint32, st LineState) {
	if !r.Enabled(MaskOSU) {
		return
	}
	r.emit(shard, Event{Kind: k, Warp: int32(warp), A: uint8(st), B: uint8(shard), Arg: reg})
}

// Compress records a compressor pattern decision on an evicted value.
func (r *Recorder) Compress(shard, warp int, pattern uint8, hit bool) {
	if !r.Enabled(MaskCompress) {
		return
	}
	var arg uint32
	if hit {
		arg = 1
	}
	r.emit(shard, Event{Kind: KindCompress, Warp: int32(warp), A: pattern, B: uint8(shard), Arg: arg})
}

// L1 records an accepted backing-store L1 access.
func (r *Recorder) L1(write, hit bool, addr uint32) {
	if !r.Enabled(MaskMem) {
		return
	}
	var a uint8
	if hit {
		a |= 1
	}
	if write {
		a |= 2
	}
	r.emit(-1, Event{Kind: KindL1Access, Warp: -1, A: a, Arg: addr})
}
