package events

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilRecorderIsNoOp: a nil *Recorder must absorb every call — the
// disabled fast path instrumented code relies on.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled(MaskAll) {
		t.Fatal("nil recorder claims enabled")
	}
	r.SetCycle(5)
	r.Issue(0, 1, 2)
	r.Stall(0, StallMemory, 3)
	r.State(0, 1, PhaseActive, 2)
	r.Barrier(0, 1, true)
	r.Exit(0, 1)
	r.PreloadIssue(0, 1, 3)
	r.PreloadFill(0, 1, 3, SrcL1)
	r.OSULine(KindOSUAlloc, 0, 1, 3, LineActive)
	r.Compress(0, 1, 2, true)
	r.L1(true, false, 99)
	if r.Len() != 0 || r.Count(KindIssue) != 0 || r.Cycle() != 0 || r.NumShards() != 0 {
		t.Fatal("nil recorder reports recorded state")
	}
	r.ForEach(func(Event) { t.Fatal("nil ForEach visited an event") })
	r.Drain(func(Event) { t.Fatal("nil Drain visited an event") })

	rep := Analyze(nil, 100, 4)
	if rep.IssueSlots != 400 || rep.Issued != 0 {
		t.Fatalf("Analyze(nil) = %+v", rep)
	}
}

// TestMaskFiltering: families outside the mask are dropped at the emit
// call, not recorded-then-hidden.
func TestMaskFiltering(t *testing.T) {
	r := NewRecorder(2, MaskSched)
	r.SetCycle(1)
	r.Issue(0, 3, 10)
	r.Stall(1, StallLSU, 4)
	r.State(0, 3, PhaseActive, 0)     // MaskStates: dropped
	r.PreloadIssue(0, 3, 1)           // MaskPreloads: dropped
	r.OSULine(KindOSUAlloc, 0, 3, 1, LineActive) // MaskOSU: dropped
	r.Compress(0, 3, 1, true)         // MaskCompress: dropped
	r.L1(false, true, 7)              // MaskMem: dropped

	if got := r.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if r.Count(KindIssue) != 1 || r.Count(KindStall) != 1 {
		t.Fatalf("sched events missing: issue=%d stall=%d", r.Count(KindIssue), r.Count(KindStall))
	}
	for _, k := range []Kind{KindWarpState, KindPreloadIssue, KindOSUAlloc, KindCompress, KindL1Access} {
		if r.Count(k) != 0 {
			t.Fatalf("masked-out kind %v recorded", k)
		}
	}
	if !r.Enabled(MaskSched) || r.Enabled(MaskOSU) {
		t.Fatal("Enabled does not reflect the mask")
	}
}

// TestChunkGrowthAndDrain: buffers must grow past the chunk size without
// losing or reordering events, and Drain must hand out each event
// exactly once across interleaved append/drain rounds (including the
// partially-filled-chunk cursor case).
func TestChunkGrowthAndDrain(t *testing.T) {
	r := NewRecorder(1, MaskSched)
	emitted, drained := 0, 0
	lastCycle := uint64(0)
	drainAll := func() {
		r.Drain(func(e Event) {
			if e.Cycle < lastCycle {
				t.Fatalf("drain out of order: cycle %d after %d", e.Cycle, lastCycle)
			}
			lastCycle = e.Cycle
			drained++
		})
	}
	emit := func(n int) {
		for i := 0; i < n; i++ {
			r.SetCycle(uint64(emitted))
			r.Issue(0, emitted%64, emitted)
			emitted++
		}
	}

	emit(chunkEvents + 17) // cursor lands mid-chunk
	drainAll()
	if drained != emitted {
		t.Fatalf("first drain: %d of %d", drained, emitted)
	}
	emit(5) // appends to the same partially-filled chunk
	drainAll()
	emit(3*chunkEvents - 2) // spans multiple chunk boundaries
	drainAll()
	if drained != emitted {
		t.Fatalf("drained %d, emitted %d", drained, emitted)
	}
	if r.Len() != emitted || r.Count(KindIssue) != uint64(emitted) {
		t.Fatalf("Len=%d Count=%d, want %d", r.Len(), r.Count(KindIssue), emitted)
	}
	n := 0
	r.ForEach(func(Event) { n++ })
	if n != emitted {
		t.Fatalf("ForEach visited %d, want %d", n, emitted)
	}
	drainAll()
	if drained != emitted {
		t.Fatal("idle drain produced events")
	}
}

// synthRecording builds a small hand-written run on one scheduler group:
//
//	cycle 1: w0 starts preloading region 7 (one fetch), group stalls on
//	         scoreboard
//	cycle 2: w1 activates region 2 immediately; group issues; w0's fetch
//	         fills from L1 (latency 1)
//	cycle 3: w0 turns active; group issues
//	cycle 4: group stalls on capacity, charged to w0
//	cycle 5: w0 starts preloading region 9; group issues
//
// 5 cycles x 1 scheduler = 5 slots: 3 issues + 2 stalls.
func synthRecording() *Recorder {
	r := NewRecorder(1, MaskAll)
	r.SetCycle(1)
	r.State(0, 0, PhasePreloading, 7)
	r.PreloadIssue(0, 0, 3)
	r.Stall(0, StallScoreboard, 0)
	r.SetCycle(2)
	r.State(0, 1, PhaseActive, 2)
	r.Issue(0, 1, 5)
	r.PreloadFill(0, 0, 3, SrcL1)
	r.SetCycle(3)
	r.State(0, 0, PhaseActive, 7)
	r.Issue(0, 0, 6)
	r.SetCycle(4)
	r.Stall(0, StallCapacity, 0)
	r.SetCycle(5)
	r.State(0, 0, PhasePreloading, 9)
	r.Issue(0, 1, 7)
	return r
}

// TestAnalyzeSynthetic checks the analyzer's arithmetic on a recording
// small enough to verify by hand.
func TestAnalyzeSynthetic(t *testing.T) {
	rep := Analyze(synthRecording(), 5, 1)

	if rep.IssueSlots != 5 || rep.Issued != 3 {
		t.Fatalf("slots=%d issued=%d, want 5/3", rep.IssueSlots, rep.Issued)
	}
	if !rep.TilesExactly() {
		t.Fatalf("breakdown does not tile: %+v", rep)
	}
	if rep.Stalls[StallScoreboard] != 1 || rep.Stalls[StallCapacity] != 1 {
		t.Fatalf("stalls = %v", rep.Stalls)
	}
	if rep.Preloads != 1 || rep.FillsBySrc[SrcL1] != 1 {
		t.Fatalf("preloads=%d fills=%v", rep.Preloads, rep.FillsBySrc)
	}
	if rep.LatencySum != 1 || rep.LatencyMax != 1 {
		t.Fatalf("latency sum=%d max=%d, want 1/1", rep.LatencySum, rep.LatencyMax)
	}
	// w0 preloaded over (1,3]: 2 cycles, no group stall inside -> fully
	// hidden. w1's immediate activation and w0's reactivation at cycle 5
	// are region instances without spans.
	if rep.RegionInstances != 3 || rep.PreloadSpans != 1 {
		t.Fatalf("instances=%d spans=%d, want 3/1", rep.RegionInstances, rep.PreloadSpans)
	}
	if rep.PreloadCycles != 2 || rep.HiddenCycles != 2 || rep.FullyHidden != 1 {
		t.Fatalf("hiding: %d/%d cycles, %d full", rep.HiddenCycles, rep.PreloadCycles, rep.FullyHidden)
	}
	if rate := rep.HidingRate(); rate != 1.0 {
		t.Fatalf("hiding rate %v, want 1.0", rate)
	}
	// The capacity stall at cycle 4 charges w0's next activation: region 9.
	if len(rep.TopRegions) != 1 || rep.TopRegions[0] != (RegionStall{9, 1, 1}) {
		t.Fatalf("top regions = %+v", rep.TopRegions)
	}

	out := rep.Render(0)
	for _, want := range []string{"5 issue slots", "capacity", "scoreboard", "100.0% of 2 preloading cycles", "region 9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Fatalf("tiling report carries a warning:\n%s", out)
	}
}

// TestAnalyzeWarnsWhenNotTiling: a breakdown that misses slots must say so.
func TestAnalyzeWarnsWhenNotTiling(t *testing.T) {
	rep := Analyze(synthRecording(), 50, 1) // claim 50 cycles, record 5
	if rep.TilesExactly() {
		t.Fatal("short recording claims to tile")
	}
	if !strings.Contains(rep.Render(0), "WARNING") {
		t.Fatal("non-tiling report has no warning")
	}
}

// TestWritePerfettoParses: the exporter's output must be valid JSON with
// the spans a hand-checkable recording implies.
func TestWritePerfettoParses(t *testing.T) {
	var buf bytes.Buffer
	err := WritePerfetto(&buf, synthRecording(), TraceMeta{
		Bench: "synthetic", Scheme: "regless", Warps: 2, Schedulers: 1, Cycles: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		OtherData struct {
			Bench  string `json:"bench"`
			Cycles uint64 `json:"cycles"`
		} `json:"otherData"`
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if tf.OtherData.Bench != "synthetic" || tf.OtherData.Cycles != 5 {
		t.Fatalf("otherData = %+v", tf.OtherData)
	}
	spans := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			spans[ev.Name] = true
			if ev.Dur == 0 {
				t.Fatalf("zero-duration span %q", ev.Name)
			}
		}
	}
	// Phase span for w0's first preloading, its preload fetch, the merged
	// issue run, and both attributed stall spans.
	for _, want := range []string{"preloading", "R3", "w00", "scoreboard", "capacity"} {
		if !spans[want] {
			t.Fatalf("missing span %q; have %v", want, spans)
		}
	}
}

// TestEventRegionRoundTrip: the NoRegion encoding must decode to -1.
func TestEventRegionRoundTrip(t *testing.T) {
	r := NewRecorder(1, MaskStates)
	r.State(0, 0, PhaseInactive, -1)
	r.State(0, 0, PhasePreloading, 12)
	var regions []int
	r.ForEach(func(e Event) { regions = append(regions, e.Region()) })
	if len(regions) != 2 || regions[0] != -1 || regions[1] != 12 {
		t.Fatalf("regions = %v", regions)
	}
}
