package main

// The `regless serve` subcommand: the sweep service of DESIGN.md §14. It
// owns its own flag set (the service fixes the simulation configuration
// at startup; requests choose the (bench, scheme, capacity) point) and
// shuts down cleanly on SIGINT/SIGTERM so operators and scripts get exit
// code 0 from a deliberate stop.

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/serve"
)

// buildSHA is stamped at link time (-ldflags "-X main.buildSHA=...");
// resolveGitSHA falls back to the VCS revision Go embeds in module
// builds. Either way /healthz reports what binary is answering.
var buildSHA string

func resolveGitSHA() string {
	if buildSHA != "" {
		return buildSHA
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return ""
}

func serveMain(args []string) {
	fs := flag.NewFlagSet("regless serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		addrFile   = fs.String("addr-file", "", "write the bound address to this file once listening (scripts poll it)")
		storeDir   = fs.String("store", "", "persistent result store directory (required; created if missing)")
		warps      = fs.Int("warps", 64, "warps per SM for every served simulation")
		sms        = fs.Int("sms", 1, "SMs on the chip (must be >= 1)")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "bounded in-flight simulations in the admission pool (must be >= 1)")
		maxCycles  = fs.Uint64("max-cycles", 60_000_000, "simulation cycle limit per run (must be >= 1)")
		watchdog   = fs.Uint64("watchdog", 1_000_000, "forward-progress watchdog threshold in cycles (0 disables)")
		sanitize   = fs.Bool("sanitize", false, "run the cycle-level invariant sanitizer in every simulation")
		faultSpec  = fs.String("faults", "", "fault-injection spec armed for every simulation (DESIGN.md §11)")
		metricsOut = fs.String("metrics-out", "", "append the server's JSONL metrics windows to this file")
		pprofOn    = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		reqTimeout = fs.Duration("request-timeout", 0, "default per-request simulation budget (0 disables; clients may shorten via X-Regless-Timeout)")
		drainWait  = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown window before in-flight runs are canceled (0 waits indefinitely)")
		queueLimit = fs.Int("queue-limit", 1024, "admission queue bound; submissions beyond it are shed with 429")
		storeMax   = fs.Int64("store-max-bytes", 0, "store size budget in bytes, enforced by LRU eviction (0 disables)")
		breakerN   = fs.Int("breaker-threshold", 3, "sanitizer diagnostics per (bench,scheme,capacity) before the circuit breaker quarantines it")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "regless serve: unexpected arguments %v\n", fs.Args())
		fs.Usage()
		os.Exit(2)
	}
	if err := validateServeFlags(*storeDir, *warps, *sms, *parallel, *maxCycles, *faultSpec); err != nil {
		fmt.Fprintln(os.Stderr, "regless serve:", err)
		fs.Usage()
		os.Exit(2)
	}

	opts := experiments.Default()
	opts.Warps = *warps
	opts.SMs = *sms
	opts.Parallelism = *parallel
	opts.MaxCycles = *maxCycles
	opts.Watchdog = *watchdog
	opts.Sanitize = *sanitize
	if *faultSpec != "" {
		plan, err := faults.Parse(*faultSpec)
		check(err) // validateServeFlags already vetted the spec
		opts.Faults = plan
	}

	cfg := serve.Config{
		Opts:             opts,
		StoreDir:         *storeDir,
		GitSHA:           resolveGitSHA(),
		EnablePprof:      *pprofOn,
		RequestTimeout:   *reqTimeout,
		QueueLimit:       *queueLimit,
		BreakerThreshold: *breakerN,
		StoreMaxBytes:    *storeMax,
	}
	if *metricsOut != "" {
		f, err := os.OpenFile(*metricsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		check(err)
		defer f.Close()
		cfg.MetricsWriter = f
	}
	srv, err := serve.New(cfg)
	check(err)

	ln, err := net.Listen("tcp", *addr)
	check(err)
	if *addrFile != "" {
		check(os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644))
	}
	fmt.Fprintf(os.Stderr, "regless: serving on http://%s (store %s, warps %d, sms %d, pool %d)\n",
		ln.Addr(), *storeDir, *warps, *sms, *parallel)

	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		// Deliberate stop: refuse new connections, then drain — in-flight
		// and queued jobs get up to -drain-timeout to finish (and
		// persist) before their contexts are canceled; SSE subscribers
		// receive terminal events; metrics flush; the store fsyncs.
		check(httpSrv.Close())
		<-done // http.ErrServerClosed
		rep, err := srv.Drain(*drainWait)
		check(err)
		fmt.Fprintf(os.Stderr,
			"regless: drain: %d pending, %d completed, %d canceled, timed_out=%v in %.2fs\n",
			rep.Pending, rep.Completed, rep.Canceled, rep.TimedOut, rep.DurationSeconds)
		fmt.Fprintln(os.Stderr, "regless: serve shut down cleanly")
	case err := <-done:
		// Listener failure: still drain and flush before reporting.
		srv.Close()
		check(err)
	}
}

func validateServeFlags(storeDir string, warps, sms, parallel int, maxCycles uint64, faultSpec string) error {
	if storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	if warps < 1 {
		return fmt.Errorf("-warps must be at least 1, got %d", warps)
	}
	if sms < 1 {
		return fmt.Errorf("-sms must be at least 1, got %d", sms)
	}
	if parallel < 1 {
		return fmt.Errorf("-parallel must be at least 1, got %d", parallel)
	}
	if maxCycles < 1 {
		return fmt.Errorf("-max-cycles must be at least 1")
	}
	if faultSpec != "" {
		if _, err := faults.Parse(faultSpec); err != nil {
			return err
		}
	}
	return nil
}
