package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestParallelOutputIdentical is the -parallel seed-stability smoke test:
// the full experiment suite rendered with a serial planner must be
// byte-identical to the same suite rendered with a parallel planner.
func TestParallelOutputIdentical(t *testing.T) {
	render := func(par int) string {
		opts := experiments.Quick()
		opts.Parallelism = par
		s := experiments.NewSuite(opts)
		tables, err := experiments.All(s)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tb := range tables {
			b.WriteString(tb.Render())
			b.WriteByte('\n')
		}
		return b.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("-parallel 1 and -parallel 8 disagree:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}
