package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain lets tests re-exec this binary as the real CLI: with
// REGLESS_RUN_MAIN=1 the process runs main() (flag parsing, os.Exit
// semantics and all) instead of the test harness.
func TestMain(m *testing.M) {
	if os.Getenv("REGLESS_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		parallel  int
		metrics   string
		bucket    int
		trace     string
		report    bool
		bench     string
		maxCycles uint64
		faults    string
		wantErr   string
	}{
		{1, "", 100, "", false, "", 1, "", ""},
		{8, "jsonl", 1, "", false, "", 60_000_000, "", ""},
		{0, "", 100, "", false, "", 1, "", "-parallel must be at least 1"},
		{-3, "", 100, "", false, "", 1, "", "-parallel must be at least 1"},
		{1, "xml", 100, "", false, "", 1, "", `unknown -metrics format "xml"`},
		{0, "xml", 100, "", false, "", 1, "", "-parallel must be at least 1"}, // first error wins
		{1, "", 0, "", false, "", 1, "", "-bucket must be at least 1, got 0"},
		{1, "", -50, "", false, "", 1, "", "-bucket must be at least 1, got -50"},
		{1, "", 100, "out.json", false, "", 1, "", "-trace and -trace-report require -bench"},
		{1, "", 100, "", true, "", 1, "", "-trace and -trace-report require -bench"},
		{1, "", 100, "out.json", true, "nw", 1, "", ""},
		{1, "", 100, "", false, "", 0, "", "-max-cycles must be at least 1"},
		{1, "", 100, "", false, "", 1, "mem-drop@5000", ""},
		{1, "", 100, "", false, "", 1, "warp-eater", "unknown class"},
		{1, "", 100, "", false, "", 1, "mem-drop:delay=9", "delay= applies to mem-delay"},
	}
	for _, c := range cases {
		err := validateFlags(c.parallel, c.metrics, c.bucket, c.trace, c.report, c.bench, c.maxCycles, c.faults, 1, false, "")
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("validateFlags(%+v) = %v, want nil", c, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("validateFlags(%+v) = %v, want error containing %q", c, err, c.wantErr)
		}
	}
}

// TestValidateSMsFlag covers the multi-SM flag combinations: -sms must be
// positive, and the single-SM-only renderers reject chips.
func TestValidateSMsFlag(t *testing.T) {
	cases := []struct {
		sms      int
		timeline bool
		app      string
		wantErr  string
	}{
		{1, false, "", ""},
		{16, false, "", ""},
		{0, false, "", "-sms must be at least 1"},
		{-4, false, "", "-sms must be at least 1"},
		{4, true, "", "-timeline renders one SM"},
		{4, false, "srad_app", "-app runs are single-SM"},
		{1, true, "", ""},
		{1, false, "srad_app", ""},
	}
	for _, c := range cases {
		err := validateFlags(1, "", 100, "", false, "nw", 1, "", c.sms, c.timeline, c.app)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("validateFlags(sms=%d timeline=%v app=%q) = %v, want nil", c.sms, c.timeline, c.app, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("validateFlags(sms=%d timeline=%v app=%q) = %v, want error containing %q",
				c.sms, c.timeline, c.app, err, c.wantErr)
		}
	}
}

// runMain re-executes the test binary as the CLI with the given args.
func runMain(t *testing.T, args ...string) (stdout, stderr string, exitCode int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "REGLESS_RUN_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("re-exec failed to run: %v", err)
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

// TestBadFlagsExitWithUsage drives the real binary: invalid -parallel and
// -metrics values must exit 2 with a usage message on stderr, leaving
// stdout clean.
func TestBadFlagsExitWithUsage(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-parallel", "0", "-experiment", "fig2"}, "-parallel must be at least 1, got 0"},
		{[]string{"-parallel", "-2", "-list"}, "-parallel must be at least 1, got -2"},
		{[]string{"-metrics", "csv", "-experiment", "fig2"}, `unknown -metrics format "csv"`},
		{[]string{"-bucket", "0", "-bench", "nw", "-timeline"}, "-bucket must be at least 1, got 0"},
		{[]string{"-trace-report", "-experiment", "fig2"}, "-trace and -trace-report require -bench"},
	}
	for _, c := range cases {
		stdout, stderr, code := runMain(t, c.args...)
		if strings.Contains(strings.Join(c.args, " "), "-list") {
			// -list short-circuits before validation; it must still work.
			if code != 0 {
				t.Fatalf("%v: exit %d, stderr %q", c.args, code, stderr)
			}
			continue
		}
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2 (stderr %q)", c.args, code, stderr)
		}
		if !strings.Contains(stderr, c.want) {
			t.Fatalf("%v: stderr %q missing %q", c.args, stderr, c.want)
		}
		if !strings.Contains(stderr, "Usage") {
			t.Fatalf("%v: stderr lacks usage text:\n%s", c.args, stderr)
		}
		if stdout != "" {
			t.Fatalf("%v: unexpected stdout %q", c.args, stdout)
		}
	}
}

// TestMetricsStreamIsValidJSONL runs one small benchmark with -metrics
// jsonl through the real binary and checks stdout is pure JSONL (tables
// moved to stderr) with the run's labels on every record.
func TestMetricsStreamIsValidJSONL(t *testing.T) {
	stdout, stderr, code := runMain(t,
		"-metrics", "jsonl", "-bench", "nw", "-scheme", "baseline", "-warps", "8")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "benchmark      nw") {
		t.Fatalf("tables did not move to stderr:\n%s", stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no JSONL records on stdout")
	}
	for i, ln := range lines {
		var rec struct {
			Bench  string `json:"bench"`
			Scheme string `json:"scheme"`
			End    uint64 `json:"end"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i+1, err, ln)
		}
		if rec.Bench != "nw" || rec.Scheme != "baseline" {
			t.Fatalf("line %d mislabeled: %s", i+1, ln)
		}
	}
}

// TestRobustnessFlagsExitWithUsage: the validated -max-cycles and -faults
// flags reject bad values through the real binary with exit 2.
func TestRobustnessFlagsExitWithUsage(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-max-cycles", "0", "-bench", "nw"}, "-max-cycles must be at least 1, got 0"},
		{[]string{"-faults", "warp-eater", "-bench", "nw"}, `unknown class "warp-eater"`},
		{[]string{"-faults", "mem-drop@oops", "-bench", "nw"}, "bad cycle"},
	}
	for _, c := range cases {
		stdout, stderr, code := runMain(t, c.args...)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2 (stderr %q)", c.args, code, stderr)
		}
		if !strings.Contains(stderr, c.want) {
			t.Fatalf("%v: stderr %q missing %q", c.args, stderr, c.want)
		}
		if !strings.Contains(stderr, "Usage") {
			t.Fatalf("%v: stderr lacks usage text:\n%s", c.args, stderr)
		}
		if stdout != "" {
			t.Fatalf("%v: unexpected stdout %q", c.args, stdout)
		}
	}
}

// TestNoFastForwardFlag: -no-fastforward must be accepted and produce
// byte-identical stats output to the default fast-forwarding run.
func TestNoFastForwardFlag(t *testing.T) {
	on, _, code := runMain(t, "-bench", "nw", "-scheme", "regless", "-warps", "8")
	if code != 0 {
		t.Fatalf("fast-forward run: exit %d", code)
	}
	off, stderr, code := runMain(t, "-no-fastforward", "-bench", "nw", "-scheme", "regless", "-warps", "8")
	if code != 0 {
		t.Fatalf("-no-fastforward run: exit %d, stderr:\n%s", code, stderr)
	}
	if on != off {
		t.Fatalf("-no-fastforward changed results\nwith ff:\n%s\nwithout:\n%s", on, off)
	}
}

// TestSnapshotFFCounters: the -json snapshot carries the fast-forward
// counters — nonzero by default, zero under -no-fastforward — while the
// simulated cycle total stays identical.
func TestSnapshotFFCounters(t *testing.T) {
	type snap struct {
		SimCycles uint64 `json:"sim_cycles"`
		FFSkipped uint64 `json:"ff_skipped_cycles"`
		FFJumps   uint64 `json:"ff_jumps"`
	}
	run := func(extra ...string) snap {
		args := append([]string{"-experiment", "fig2", "-benchmarks", "nw", "-warps", "8", "-json"}, extra...)
		stdout, stderr, code := runMain(t, args...)
		if code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", args, code, stderr)
		}
		var s snap
		if err := json.Unmarshal([]byte(stdout), &s); err != nil {
			t.Fatalf("snapshot is not JSON: %v\n%s", err, stdout)
		}
		return s
	}
	ff := run()
	stepped := run("-no-fastforward")
	if ff.SimCycles == 0 || ff.SimCycles != stepped.SimCycles {
		t.Fatalf("sim_cycles diverged: ff=%d stepped=%d", ff.SimCycles, stepped.SimCycles)
	}
	if ff.FFSkipped == 0 || ff.FFJumps == 0 {
		t.Fatalf("fast-forward never engaged: %+v", ff)
	}
	if stepped.FFSkipped != 0 || stepped.FFJumps != 0 {
		t.Fatalf("-no-fastforward still skipped cycles: %+v", stepped)
	}
}

// TestDiagnosticBundleEndToEnd drives the full crash path through the
// real binary: a detected fault exits 1, renders the bundle on stderr,
// and serializes it as JSON to -diag-out.
func TestDiagnosticBundleEndToEnd(t *testing.T) {
	diagFile := t.TempDir() + "/diag.json"
	stdout, stderr, code := runMain(t,
		"-bench", "nw", "-scheme", "regless", "-warps", "8",
		"-faults", "osu-tag@200; seed=3", "-sanitize",
		"-watchdog", "20000", "-diag-out", diagFile)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, want := range []string{"component  osu/", "violation", "fault      osu-tag", "wrote diagnostic bundle to"} {
		if !strings.Contains(stderr, want) {
			t.Fatalf("stderr missing %q:\n%s", want, stderr)
		}
	}
	raw, err := os.ReadFile(diagFile)
	if err != nil {
		t.Fatalf("bundle file: %v", err)
	}
	var bundle struct {
		Component     string   `json:"component"`
		Violation     string   `json:"violation"`
		Cycle         uint64   `json:"cycle"`
		Kernel        string   `json:"kernel"`
		FaultsApplied []string `json:"faults_applied"`
		Warps         []any    `json:"warps"`
		Metrics       []any    `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &bundle); err != nil {
		t.Fatalf("bundle is not valid JSON: %v\n%s", err, raw)
	}
	if !strings.HasPrefix(bundle.Component, "osu/") || bundle.Violation == "" || bundle.Kernel != "nw" {
		t.Fatalf("bundle content: %+v", bundle)
	}
	if len(bundle.FaultsApplied) == 0 || len(bundle.Warps) == 0 || len(bundle.Metrics) == 0 {
		t.Fatalf("bundle missing context: %+v", bundle)
	}
}

// TestToleratedFaultRunSucceeds: a sanitized run with a timing-only fault
// completes normally with the usual stats output.
func TestToleratedFaultRunSucceeds(t *testing.T) {
	stdout, stderr, code := runMain(t,
		"-bench", "nw", "-scheme", "regless", "-warps", "8",
		"-faults", "mem-delay@200:delay=500; seed=3", "-sanitize", "-watchdog", "20000")
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "benchmark      nw") {
		t.Fatalf("missing stats output:\n%s", stdout)
	}
}
