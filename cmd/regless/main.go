// Command regless runs the RegLess reproduction's experiments: every
// table and figure of the paper's evaluation, a single benchmark under a
// chosen register scheme, or the whole suite.
//
// Usage:
//
//	regless -experiment all                 # every table and figure
//	regless -experiment fig16               # one experiment
//	regless -bench hotspot -scheme regless  # one run with stats
//	regless -experiment all -markdown       # markdown output
//	regless -warps 32                       # scale the SM occupancy
//	regless -metrics jsonl -experiment fig17  # stream per-window metrics
//	regless -cpuprofile cpu.pb.gz -experiment all  # profile the run
//	regless serve -store /var/cache/regless   # sweep service (DESIGN.md §14)
//
// With -metrics jsonl and no -metrics-out, the JSONL stream takes stdout
// and tables move to stderr, so piping into a JSON consumer always sees a
// valid stream.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/launch"
	"repro/internal/rf"
	"repro/internal/sanitizer"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// `regless serve` owns its own flag set (serve.go); everything else
	// is the classic single-invocation CLI below.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	var (
		experiment = flag.String("experiment", "", "experiment id (table1, fig2..fig19, table2, ablation, gpuscale, coresident, oversub, or 'all')")
		bench      = flag.String("bench", "", "run one benchmark (with -scheme)")
		app        = flag.String("app", "", "run a multi-kernel application (backprop_app, bfs_app, srad_app)")
		scheme     = flag.String("scheme", "regless", "scheme for -bench: baseline, baseline-2level, rfv, rfh, regless, regless-nocomp")
		capacity   = flag.Int("capacity", experiments.DefaultCapacity, "RegLess OSU registers per SM")
		warps      = flag.Int("warps", 64, "warps per SM")
		sms        = flag.Int("sms", 1, "SMs on the chip (must be >= 1); >1 runs lockstep SMs sharing the banked L2 and DRAM")
		benchList  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 21)")
		markdown   = flag.Bool("markdown", false, "emit markdown tables")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations in the run planner (must be >= 1); output is identical at any setting")
		jsonOut    = flag.Bool("json", false, "with -experiment: emit a JSON benchmark snapshot (wall-clock, simcycles/s) instead of tables")
		list       = flag.Bool("list", false, "list benchmarks and exit")
		timeline   = flag.Bool("timeline", false, "with -bench: render a warp-state timeline")
		bucket     = flag.Int("bucket", 100, "timeline bucket size in cycles (must be >= 1)")
		csvOut     = flag.Bool("csv", false, "with -timeline: emit CSV instead of ASCII")
		traceOut   = flag.String("trace", "", "with -bench: write a Chrome trace-event JSON file (open in Perfetto)")
		traceRep   = flag.Bool("trace-report", false, "with -bench: print a stall-attribution and preload-latency report")
		gitSHA     = flag.String("snapshot-sha", "", "git revision to stamp into the -json snapshot (scripts/bench.sh)")
		metricsFmt = flag.String("metrics", "", "stream per-window metrics; the only format is 'jsonl'")
		metricsOut = flag.String("metrics-out", "", "write -metrics stream to a file (default: stdout, moving tables to stderr)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		maxCycles  = flag.Uint64("max-cycles", 60_000_000, "simulation cycle limit per kernel (must be >= 1)")
		watchdog   = flag.Uint64("watchdog", 1_000_000, "forward-progress watchdog threshold in cycles (0 disables)")
		faultSpec  = flag.String("faults", "", "fault-injection spec, e.g. 'mem-drop@5000; seed=3' (DESIGN.md §11)")
		sanitize   = flag.Bool("sanitize", false, "run the cycle-level invariant sanitizer every cycle")
		noFF       = flag.Bool("no-fastforward", false, "step every cycle instead of skipping provably idle spans (differential validation; results are identical)")
		diagOut    = flag.String("diag-out", "", "write the diagnostic bundle as JSON to this file on abnormal termination")
	)
	flag.Parse()
	diagOutPath = *diagOut

	if *list {
		for _, b := range kernels.Suite() {
			fmt.Printf("%-16s %s\n", b.Name, b.Character)
		}
		return
	}
	if err := validateFlags(*parallel, *metricsFmt, *bucket, *traceOut, *traceRep, *bench, *maxCycles, *faultSpec, *sms, *timeline, *app); err != nil {
		fmt.Fprintln(os.Stderr, "regless:", err)
		flag.Usage()
		os.Exit(2)
	}

	opts := experiments.Default()
	opts.Warps = *warps
	opts.SMs = *sms
	opts.Parallelism = *parallel
	opts.MaxCycles = *maxCycles
	opts.Watchdog = *watchdog
	opts.Sanitize = *sanitize
	opts.NoFastForward = *noFF
	if *faultSpec != "" {
		plan, err := faults.Parse(*faultSpec)
		check(err) // validateFlags already vetted the spec
		opts.Faults = plan
	}
	if *benchList != "" {
		opts.Benchmarks = strings.Split(*benchList, ",")
	}

	// Tables normally print to stdout; a -metrics stream without a file
	// destination takes stdout over and tables move to stderr.
	var out io.Writer = os.Stdout
	if *metricsFmt != "" {
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			check(err)
			defer f.Close()
			opts.MetricsWriter = f
		} else {
			opts.MetricsWriter = os.Stdout
			out = os.Stderr
		}
	}
	suite := experiments.NewSuite(opts)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		check(suite.FlushMetrics())
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			check(err)
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
			f.Close()
		}
	}()

	switch {
	case *app != "":
		runApp(*app, experiments.Scheme(*scheme), *capacity, *warps, *maxCycles, *watchdog)
	case *bench != "" && (*timeline || *traceOut != "" || *traceRep):
		runTrace(traceOpts{
			bench: *bench, scheme: experiments.Scheme(*scheme),
			bucket: *bucket, csv: *csvOut, timeline: *timeline,
			traceFile: *traceOut, report: *traceRep, sms: *sms,
			setup: experiments.SimSetup{
				Capacity:      *capacity,
				Warps:         *warps,
				MaxCycles:     *maxCycles,
				Watchdog:      *watchdog,
				Sanitize:      *sanitize,
				Faults:        opts.Faults,
				NoFastForward: *noFF,
			},
		})
	case *bench != "":
		runOne(suite, out, *bench, experiments.Scheme(*scheme), *capacity)
	case *experiment == "all":
		start := time.Now()
		tables, err := experiments.All(suite)
		check(err)
		if *jsonOut {
			emitSnapshot(suite, out, "all", *gitSHA, len(tables), time.Since(start))
			return
		}
		for _, tb := range tables {
			fmt.Fprintln(out, render(tb, *markdown))
		}
	case *experiment != "":
		fn, ok := experiments.ByID(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
			os.Exit(2)
		}
		start := time.Now()
		tb, err := fn(suite)
		check(err)
		if *jsonOut {
			emitSnapshot(suite, out, *experiment, *gitSHA, 1, time.Since(start))
			return
		}
		fmt.Fprintln(out, render(tb, *markdown))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// validateFlags rejects flag values that would otherwise be silently
// misread: a non-positive planner width used to mean "GOMAXPROCS" but now
// the default carries that value, so anything below 1 is a mistake; a
// non-positive bucket used to be silently replaced by 100 inside the
// tracer.
func validateFlags(parallel int, metricsFmt string, bucket int, traceOut string, traceRep bool, bench string, maxCycles uint64, faultSpec string, sms int, timeline bool, app string) error {
	if parallel < 1 {
		return fmt.Errorf("-parallel must be at least 1, got %d", parallel)
	}
	if sms < 1 {
		return fmt.Errorf("-sms must be at least 1, got %d", sms)
	}
	if sms > 1 && timeline {
		return fmt.Errorf("-timeline renders one SM; use -sms 1 (Perfetto -trace supports chips)")
	}
	if sms > 1 && app != "" {
		return fmt.Errorf("-app runs are single-SM; use -sms 1")
	}
	if metricsFmt != "" && metricsFmt != "jsonl" {
		return fmt.Errorf("unknown -metrics format %q (only \"jsonl\")", metricsFmt)
	}
	if bucket < 1 {
		return fmt.Errorf("-bucket must be at least 1, got %d", bucket)
	}
	if (traceOut != "" || traceRep) && bench == "" {
		return fmt.Errorf("-trace and -trace-report require -bench")
	}
	if maxCycles < 1 {
		return fmt.Errorf("-max-cycles must be at least 1, got %d", maxCycles)
	}
	if faultSpec != "" {
		if _, err := faults.Parse(faultSpec); err != nil {
			return err
		}
	}
	return nil
}

// benchSnapshot is the -json performance record: scripts/bench.sh writes
// one per run so the suite's throughput is tracked across PRs.
type benchSnapshot struct {
	Experiment    string  `json:"experiment"`
	GitSHA        string  `json:"git_sha,omitempty"`
	GoVersion     string  `json:"go_version"`
	Parallelism   int     `json:"parallelism"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Warps         int     `json:"warps"`
	SMs           int     `json:"sms"`
	Benchmarks    int     `json:"benchmarks"`
	Tables        int     `json:"tables"`
	Runs          int     `json:"runs"`
	SimCycles     uint64  `json:"sim_cycles"`
	FFSkipped     uint64  `json:"ff_skipped_cycles"`
	FFJumps       uint64  `json:"ff_jumps"`
	WallSeconds   float64 `json:"wall_seconds"`
	SimCyclesPerS float64 `json:"simcycles_per_sec"`
	TablesPerS    float64 `json:"tables_per_sec"`
}

func emitSnapshot(s *experiments.Suite, out io.Writer, experiment, gitSHA string, tables int, wall time.Duration) {
	runs := s.CachedRuns()
	var cycles, ffSkipped, ffJumps uint64
	for _, r := range runs {
		cycles += r.Stats.Cycles
		ffSkipped += r.Stats.FFSkippedCycles
		ffJumps += r.Stats.FFJumps
	}
	snap := benchSnapshot{
		Experiment:    experiment,
		GitSHA:        gitSHA,
		GoVersion:     runtime.Version(),
		Parallelism:   s.Opts.Parallelism,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Warps:         s.Opts.Warps,
		SMs:           snapshotSMs(s.Opts.SMs),
		Benchmarks:    len(s.Opts.Benchmarks),
		Tables:        tables,
		Runs:          len(runs),
		SimCycles:     cycles,
		FFSkipped:     ffSkipped,
		FFJumps:       ffJumps,
		WallSeconds:   wall.Seconds(),
		SimCyclesPerS: float64(cycles) / wall.Seconds(),
		TablesPerS:    float64(tables) / wall.Seconds(),
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	check(enc.Encode(snap))
}

// snapshotSMs canonicalizes the chip size for the snapshot: 0 (unset)
// and 1 both mean the classic single-SM path.
func snapshotSMs(sms int) int {
	if sms < 1 {
		return 1
	}
	return sms
}

func render(tb *experiments.Table, md bool) string {
	if md {
		return tb.Markdown()
	}
	return tb.Render()
}

func runApp(name string, scheme experiments.Scheme, capacity, warps int, maxCycles, watchdog uint64) {
	application, err := kernels.AppByName(name)
	check(err)
	cfg := sim.DefaultConfig()
	cfg.MaxCycles = maxCycles
	cfg.WatchdogCycles = watchdog
	factory := func(_ int, k *isa.Kernel) (sim.Provider, error) {
		switch scheme {
		case experiments.SchemeBaseline:
			return rf.NewBaseline(), nil
		case experiments.SchemeRegLess:
			return core.New(core.ConfigForCapacity(capacity), k)
		default:
			return nil, fmt.Errorf("app runs support baseline and regless, not %q", scheme)
		}
	}
	res, err := launch.RunApp(application, warps, cfg, factory, nil)
	check(err)
	fmt.Printf("application    %s (%d kernels), scheme %s\n", application.Name, len(application.Kernels), scheme)
	for i, st := range res.PerKernel {
		fmt.Printf("  kernel %d (%-18s) %7d cycles, IPC %.2f, SIMT eff %.2f\n",
			i, application.Kernels[i].Name, st.Cycles, st.IPC(), st.SIMTEfficiency())
	}
	fmt.Printf("total          %d cycles; L2 hits across launches: %d\n", res.Cycles, res.MemStats.L2Hits)
}

// traceOpts parameterizes the traced single-benchmark run shared by
// -timeline, -trace, and -trace-report (one simulation feeds all three).
type traceOpts struct {
	bench     string
	scheme    experiments.Scheme
	bucket    int
	csv       bool
	timeline  bool
	traceFile string
	report    bool
	sms       int
	setup     experiments.SimSetup
}

func runTrace(o traceOpts) {
	if o.sms > 1 {
		runChipTrace(o)
		return
	}
	smv, _, err := experiments.BuildSM(o.bench, o.scheme, o.setup)
	check(err)
	// The timeline alone needs only warp-state events; the Perfetto
	// export and the stall report consume every family.
	var mask events.Mask
	if o.traceFile != "" || o.report {
		mask = events.MaskAll
	}
	res, err := trace.Run(smv, o.bucket, mask)
	check(err)
	if o.timeline {
		if o.csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Printf("%s under %s:\n", o.bench, o.scheme)
			fmt.Print(res.Render(160))
			fmt.Printf("total: %d cycles, IPC %.2f\n", res.Stats.Cycles, res.Stats.IPC())
		}
	}
	if o.traceFile != "" {
		f, err := os.Create(o.traceFile)
		check(err)
		check(events.WritePerfetto(f, res.Events, events.TraceMeta{
			Bench:        o.bench,
			Scheme:       string(o.scheme),
			Warps:        len(smv.Warps),
			Schedulers:   smv.Cfg.Schedulers,
			Cycles:       res.Stats.Cycles,
			PatternNames: patternNames(),
		}))
		check(f.Close())
		fmt.Fprintf(os.Stderr, "regless: wrote %d events to %s (open in ui.perfetto.dev)\n",
			res.Events.Len(), o.traceFile)
	}
	if o.report {
		rep := events.Analyze(res.Events, res.Stats.Cycles, smv.Cfg.Schedulers)
		fmt.Printf("%s under %s: stall attribution over %d cycles\n", o.bench, o.scheme, res.Stats.Cycles)
		fmt.Print(rep.Render(10))
	}
}

// runChipTrace traces a multi-SM run: one recorder per SM, the chip run
// lockstep, the Perfetto export grouping each SM's tracks in its own
// process block with global warp IDs, and the stall report rendered per
// SM with explicit SM/warp labels.
func runChipTrace(o traceOpts) {
	g, _, err := experiments.BuildChip(o.bench, o.scheme, o.sms, o.setup)
	check(err)
	recs := make([]*events.Recorder, len(g.SMs))
	metas := make([]events.TraceMeta, len(g.SMs))
	for i, smv := range g.SMs {
		recs[i] = events.NewRecorder(smv.Cfg.Schedulers, events.MaskAll)
		smv.AttachRecorder(recs[i])
	}
	res, err := g.Run()
	check(err)
	for i, smv := range g.SMs {
		metas[i] = events.TraceMeta{
			Bench:        o.bench,
			Scheme:       string(o.scheme),
			Warps:        len(smv.Warps),
			Schedulers:   smv.Cfg.Schedulers,
			Cycles:       res.PerSM[i].Cycles,
			SM:           i,
			WarpIDBase:   smv.Cfg.WarpIDBase,
			PatternNames: patternNames(),
		}
	}
	if o.traceFile != "" {
		f, err := os.Create(o.traceFile)
		check(err)
		check(events.WriteChipPerfetto(f, recs, metas))
		check(f.Close())
		var total int
		for _, rec := range recs {
			total += rec.Len()
		}
		fmt.Fprintf(os.Stderr, "regless: wrote %d events (%d SMs) to %s (open in ui.perfetto.dev)\n",
			total, len(recs), o.traceFile)
	}
	if o.report {
		fmt.Printf("%s under %s on %d SMs: %d chip cycles\n", o.bench, o.scheme, o.sms, res.Cycles)
		for i := range recs {
			rep := events.Analyze(recs[i], res.PerSM[i].Cycles, g.SMs[i].Cfg.Schedulers)
			fmt.Printf("SM %d (warps %d..%d): stall attribution over %d cycles\n",
				i, g.SMs[i].Cfg.WarpIDBase, g.SMs[i].Cfg.WarpIDBase+len(g.SMs[i].Warps)-1,
				res.PerSM[i].Cycles)
			fmt.Print(rep.Render(10))
		}
	}
}

// patternNames indexes compressor pattern IDs to names for trace args.
func patternNames() []string {
	names := make([]string, compress.NumPatterns)
	for p := compress.Pattern(0); p < compress.NumPatterns; p++ {
		names[p] = p.String()
	}
	return names
}

func runOne(suite *experiments.Suite, out io.Writer, bench string, scheme experiments.Scheme, capacity int) {
	r, err := suite.Get(bench, scheme, capacity)
	check(err)
	st := r.Stats
	fmt.Fprintf(out, "benchmark      %s\n", bench)
	fmt.Fprintf(out, "scheme         %s", scheme)
	if scheme == experiments.SchemeRegLess || scheme == experiments.SchemeRegLessNC {
		fmt.Fprintf(out, " (%d registers/SM)", capacity)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "cycles         %d\n", st.Cycles)
	fmt.Fprintf(out, "instructions   %d (IPC %.2f, SIMT efficiency %.2f)\n", st.DynInsns, st.IPC(), st.SIMTEfficiency())
	fmt.Fprintf(out, "reg accesses   %d reads, %d writes\n", r.Prov.StructReads, r.Prov.StructWrites)
	fmt.Fprintf(out, "working set    %.1f KB per 100-cycle window\n", st.WorkingSetKB)
	if p := r.Prov.Preloads(); p > 0 {
		fmt.Fprintf(out, "preloads       %d (OSU %.1f%%, compressor %.1f%%, L1 %.2f%%, L2/DRAM %.3f%%)\n",
			p,
			100*float64(r.Prov.PreloadFromOSU)/float64(p),
			100*float64(r.Prov.PreloadFromCompressor)/float64(p),
			100*float64(r.Prov.PreloadFromL1)/float64(p),
			100*float64(r.Prov.PreloadFromL2DRAM)/float64(p))
		fmt.Fprintf(out, "regions        %d activations, %.1f cycles/region, %d metadata insns\n",
			r.Prov.RegionActivations,
			float64(r.Prov.RegionCycles)/float64(max64(r.Prov.RegionActivations, 1)),
			r.Prov.MetaInsns)
		fmt.Fprintf(out, "L1 traffic     %d preload reads, %d stores, %d invalidations\n",
			r.Prov.L1PreloadReads, r.Prov.L1StoreWrites, r.Prov.L1Invalidates)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// diagOutPath is -diag-out's destination, consulted when check hits a
// structured Diagnostic.
var diagOutPath string

func check(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "error:", err)
	var d *sanitizer.Diagnostic
	if errors.As(err, &d) {
		fmt.Fprint(os.Stderr, d.Render())
		if diagOutPath != "" {
			if f, ferr := os.Create(diagOutPath); ferr != nil {
				fmt.Fprintln(os.Stderr, "regless: diag-out:", ferr)
			} else {
				if werr := d.WriteJSON(f); werr != nil {
					fmt.Fprintln(os.Stderr, "regless: diag-out:", werr)
				}
				f.Close()
				fmt.Fprintf(os.Stderr, "regless: wrote diagnostic bundle to %s\n", diagOutPath)
			}
		}
	}
	os.Exit(1)
}
