// Command regless runs the RegLess reproduction's experiments: every
// table and figure of the paper's evaluation, a single benchmark under a
// chosen register scheme, or the whole suite.
//
// Usage:
//
//	regless -experiment all                 # every table and figure
//	regless -experiment fig16               # one experiment
//	regless -bench hotspot -scheme regless  # one run with stats
//	regless -experiment all -markdown       # markdown output
//	regless -warps 32                       # scale the SM occupancy
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/launch"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (table1, fig2..fig19, table2, ablation, gpuscale, oversub, or 'all')")
		bench      = flag.String("bench", "", "run one benchmark (with -scheme)")
		app        = flag.String("app", "", "run a multi-kernel application (backprop_app, bfs_app, srad_app)")
		scheme     = flag.String("scheme", "regless", "scheme for -bench: baseline, baseline-2level, rfv, rfh, regless, regless-nocomp")
		capacity   = flag.Int("capacity", experiments.DefaultCapacity, "RegLess OSU registers per SM")
		warps      = flag.Int("warps", 64, "warps per SM")
		benchList  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 21)")
		markdown   = flag.Bool("markdown", false, "emit markdown tables")
		parallel   = flag.Int("parallel", 0, "concurrent simulations in the run planner (0 = GOMAXPROCS); output is identical at any setting")
		jsonOut    = flag.Bool("json", false, "with -experiment: emit a JSON benchmark snapshot (wall-clock, simcycles/s) instead of tables")
		list       = flag.Bool("list", false, "list benchmarks and exit")
		timeline   = flag.Bool("timeline", false, "with -bench: render a warp-state timeline")
		bucket     = flag.Int("bucket", 100, "timeline bucket size in cycles")
		csvOut     = flag.Bool("csv", false, "with -timeline: emit CSV instead of ASCII")
	)
	flag.Parse()

	if *list {
		for _, b := range kernels.Suite() {
			fmt.Printf("%-16s %s\n", b.Name, b.Character)
		}
		return
	}

	opts := experiments.Default()
	opts.Warps = *warps
	opts.Parallelism = *parallel
	if *benchList != "" {
		opts.Benchmarks = strings.Split(*benchList, ",")
	}
	suite := experiments.NewSuite(opts)

	switch {
	case *app != "":
		runApp(*app, experiments.Scheme(*scheme), *capacity, *warps)
	case *bench != "" && *timeline:
		runTimeline(*bench, experiments.Scheme(*scheme), *capacity, *warps, *bucket, *csvOut)
	case *bench != "":
		runOne(suite, *bench, experiments.Scheme(*scheme), *capacity)
	case *experiment == "all":
		start := time.Now()
		tables, err := experiments.All(suite)
		check(err)
		if *jsonOut {
			emitSnapshot(suite, "all", len(tables), time.Since(start))
			return
		}
		for _, tb := range tables {
			fmt.Println(render(tb, *markdown))
		}
	case *experiment != "":
		fn, ok := experiments.ByID(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
			os.Exit(2)
		}
		start := time.Now()
		tb, err := fn(suite)
		check(err)
		if *jsonOut {
			emitSnapshot(suite, *experiment, 1, time.Since(start))
			return
		}
		fmt.Println(render(tb, *markdown))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// benchSnapshot is the -json performance record: scripts/bench.sh writes
// one per run so the suite's throughput is tracked across PRs.
type benchSnapshot struct {
	Experiment     string  `json:"experiment"`
	Parallelism    int     `json:"parallelism"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Warps          int     `json:"warps"`
	Benchmarks     int     `json:"benchmarks"`
	Tables         int     `json:"tables"`
	Runs           int     `json:"runs"`
	SimCycles      uint64  `json:"sim_cycles"`
	WallSeconds    float64 `json:"wall_seconds"`
	SimCyclesPerS  float64 `json:"simcycles_per_sec"`
	TablesPerS     float64 `json:"tables_per_sec"`
}

func emitSnapshot(s *experiments.Suite, experiment string, tables int, wall time.Duration) {
	runs := s.CachedRuns()
	var cycles uint64
	for _, r := range runs {
		cycles += r.Stats.Cycles
	}
	snap := benchSnapshot{
		Experiment:    experiment,
		Parallelism:   s.Opts.Parallelism,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Warps:         s.Opts.Warps,
		Benchmarks:    len(s.Opts.Benchmarks),
		Tables:        tables,
		Runs:          len(runs),
		SimCycles:     cycles,
		WallSeconds:   wall.Seconds(),
		SimCyclesPerS: float64(cycles) / wall.Seconds(),
		TablesPerS:    float64(tables) / wall.Seconds(),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	check(enc.Encode(snap))
}

func render(tb *experiments.Table, md bool) string {
	if md {
		return tb.Markdown()
	}
	return tb.Render()
}

func runApp(name string, scheme experiments.Scheme, capacity, warps int) {
	application, err := kernels.AppByName(name)
	check(err)
	cfg := sim.DefaultConfig()
	cfg.MaxCycles = 60_000_000
	factory := func(_ int, k *isa.Kernel) (sim.Provider, error) {
		switch scheme {
		case experiments.SchemeBaseline:
			return rf.NewBaseline(), nil
		case experiments.SchemeRegLess:
			return core.New(core.ConfigForCapacity(capacity), k)
		default:
			return nil, fmt.Errorf("app runs support baseline and regless, not %q", scheme)
		}
	}
	res, err := launch.RunApp(application, warps, cfg, factory, nil)
	check(err)
	fmt.Printf("application    %s (%d kernels), scheme %s\n", application.Name, len(application.Kernels), scheme)
	for i, st := range res.PerKernel {
		fmt.Printf("  kernel %d (%-18s) %7d cycles, IPC %.2f, SIMT eff %.2f\n",
			i, application.Kernels[i].Name, st.Cycles, st.IPC(), st.SIMTEfficiency())
	}
	fmt.Printf("total          %d cycles; L2 hits across launches: %d\n", res.Cycles, res.MemStats.L2Hits)
}

func runTimeline(bench string, scheme experiments.Scheme, capacity, warps, bucket int, csv bool) {
	smv, _, err := experiments.BuildSM(bench, scheme, capacity, warps, 60_000_000)
	check(err)
	res, err := trace.Run(smv, bucket)
	check(err)
	if csv {
		fmt.Print(res.CSV())
		return
	}
	fmt.Printf("%s under %s:\n", bench, scheme)
	fmt.Print(res.Render(160))
	fmt.Printf("total: %d cycles, IPC %.2f\n", res.Stats.Cycles, res.Stats.IPC())
}

func runOne(suite *experiments.Suite, bench string, scheme experiments.Scheme, capacity int) {
	r, err := suite.Get(bench, scheme, capacity)
	check(err)
	st := r.Stats
	fmt.Printf("benchmark      %s\n", bench)
	fmt.Printf("scheme         %s", scheme)
	if scheme == experiments.SchemeRegLess || scheme == experiments.SchemeRegLessNC {
		fmt.Printf(" (%d registers/SM)", capacity)
	}
	fmt.Println()
	fmt.Printf("cycles         %d\n", st.Cycles)
	fmt.Printf("instructions   %d (IPC %.2f, SIMT efficiency %.2f)\n", st.DynInsns, st.IPC(), st.SIMTEfficiency())
	fmt.Printf("reg accesses   %d reads, %d writes\n", r.Prov.StructReads, r.Prov.StructWrites)
	fmt.Printf("working set    %.1f KB per 100-cycle window\n", st.WorkingSetKB)
	if p := r.Prov.Preloads(); p > 0 {
		fmt.Printf("preloads       %d (OSU %.1f%%, compressor %.1f%%, L1 %.2f%%, L2/DRAM %.3f%%)\n",
			p,
			100*float64(r.Prov.PreloadFromOSU)/float64(p),
			100*float64(r.Prov.PreloadFromCompressor)/float64(p),
			100*float64(r.Prov.PreloadFromL1)/float64(p),
			100*float64(r.Prov.PreloadFromL2DRAM)/float64(p))
		fmt.Printf("regions        %d activations, %.1f cycles/region, %d metadata insns\n",
			r.Prov.RegionActivations,
			float64(r.Prov.RegionCycles)/float64(max64(r.Prov.RegionActivations, 1)),
			r.Prov.MetaInsns)
		fmt.Printf("L1 traffic     %d preload reads, %d stores, %d invalidations\n",
			r.Prov.L1PreloadReads, r.Prov.L1StoreWrites, r.Prov.L1Invalidates)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
