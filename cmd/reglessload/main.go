// Command reglessload drives a running `regless serve` instance with
// sweep traffic: a configurable grid of (bench, scheme, capacity) points
// fired as thousands of run submissions from multiple synthetic clients,
// plus a one-shot -table mode that submits the grid as a single sweep and
// prints the rendered table (scripts diff it against goldens and across
// cold/warm passes).
//
// Usage:
//
//	reglessload -addr http://127.0.0.1:8080 -requests 2000 -clients 16 \
//	    -benchmarks nw,bfs -schemes baseline,regless -capacities 256,512
//	reglessload -addr http://127.0.0.1:8080 -table -benchmarks nw -schemes regless
//
// The summary reports client-side outcomes and the server's own counter
// deltas (/metricsz before vs after), so a run shows how much traffic the
// store absorbed versus simulated.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

type runRequest struct {
	Bench    string `json:"bench"`
	Scheme   string `json:"scheme"`
	Capacity int    `json:"capacity,omitempty"`
}

type runStatus struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Cached bool            `json:"cached,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

type sweepStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

func main() {
	var (
		addr      = flag.String("addr", "", "server base URL, e.g. http://127.0.0.1:8080 (required)")
		requests  = flag.Int("requests", 200, "total run submissions to fire (must be >= 1)")
		clients   = flag.Int("clients", 8, "concurrent synthetic clients, each with its own X-Regless-Client identity")
		benchList = flag.String("benchmarks", "nw", "comma-separated benchmarks in the grid")
		schemes   = flag.String("schemes", "regless", "comma-separated schemes in the grid")
		capsList  = flag.String("capacities", "", "comma-separated RegLess capacities (empty: server default)")
		waitReady = flag.Duration("wait-ready", 0, "poll /healthz until the server answers, up to this long")
		table     = flag.Bool("table", false, "submit the grid as one sweep and print its rendered table to stdout")
		timeout   = flag.Duration("timeout", 10*time.Minute, "per-request HTTP timeout")
		retries   = flag.Int("retries", 3, "retries per request when the server sheds load with 429 (honors Retry-After with jittered backoff)")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "reglessload: -addr is required")
		flag.Usage()
		os.Exit(2)
	}
	if *requests < 1 || *clients < 1 {
		fmt.Fprintln(os.Stderr, "reglessload: -requests and -clients must be at least 1")
		os.Exit(2)
	}
	grid, err := buildGrid(*benchList, *schemes, *capsList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reglessload:", err)
		os.Exit(2)
	}
	hc := &http.Client{Timeout: *timeout}
	base := strings.TrimSuffix(*addr, "/")

	if *waitReady > 0 {
		if err := waitForServer(hc, base, *waitReady); err != nil {
			fmt.Fprintln(os.Stderr, "reglessload:", err)
			os.Exit(1)
		}
	}

	if *table {
		if err := printTable(hc, base, grid); err != nil {
			fmt.Fprintln(os.Stderr, "reglessload:", err)
			os.Exit(1)
		}
		return
	}

	before, _ := fetchMetrics(hc, base)
	lat := newLatencyTracker()
	start := time.Now()
	var tally classTally
	var wg sync.WaitGroup
	perClient := (*requests + *clients - 1) / *clients
	fired := 0
	for c := 0; c < *clients && fired < *requests; c++ {
		n := perClient
		if fired+n > *requests {
			n = *requests - fired
		}
		fired += n
		wg.Add(1)
		go func(client, n, offset int) {
			defer wg.Done()
			name := fmt.Sprintf("load-%d", client)
			for i := 0; i < n; i++ {
				// Each client walks the grid from its own offset, so
				// concurrent clients collide on keys (dedupe) while
				// still covering every point.
				req := grid[(offset+i)%len(grid)]
				t0 := time.Now()
				cls := submitRun(hc, base, name, req, *retries)
				lat.observe(time.Since(t0))
				tally.count(cls)
			}
		}(c, n, c)
	}
	wg.Wait()
	wall := time.Since(start)
	after, _ := fetchMetrics(hc, base)

	fmt.Printf("reglessload: %d requests (%d clients, %d grid points) in %.2fs (%.1f req/s)\n",
		*requests, *clients, len(grid), wall.Seconds(), float64(*requests)/wall.Seconds())
	tally.print(os.Stdout)
	lat.printSummary(os.Stdout)
	if before != nil && after != nil {
		printDeltas(before, after)
	}
	if tally.bad() > 0 {
		os.Exit(1)
	}
}

// errClass classifies one request's terminal outcome. Everything except
// clsOK makes the exit code nonzero; the breakdown tells an operator
// whether the problem was the server (5xx, failed runs), the network
// (disconnects), load shedding that outlasted the retries (shed), or
// budgets (timeouts).
type errClass int

const (
	clsOK errClass = iota
	clsFailed     // server answered 200 with a non-done run (failed/expired/canceled)
	clsRejected   // 4xx admission rejection (bad request, quarantined config)
	clsTimeout    // client-side -timeout elapsed
	clsShed       // 429 shedding outlasted every retry
	cls5xx        // server error
	clsDisconnect // connection severed mid-request
	clsClasses    // count
)

var classNames = [clsClasses]string{
	"done", "failed runs", "rejected (4xx)", "timeouts", "shed (429)", "5xx", "disconnects",
}

// classTally is the per-class outcome counter shared by the clients.
type classTally struct{ c [clsClasses]atomic.Int64 }

func (t *classTally) count(c errClass) { t.c[c].Add(1) }

func (t *classTally) bad() int64 {
	var n int64
	for c := clsFailed; c < clsClasses; c++ {
		n += t.c[c].Load()
	}
	return n
}

func (t *classTally) print(w io.Writer) {
	fmt.Fprintf(w, "  done %d", t.c[clsOK].Load())
	for c := clsFailed; c < clsClasses; c++ {
		if v := t.c[c].Load(); v > 0 {
			fmt.Fprintf(w, ", %s %d", classNames[c], v)
		}
	}
	fmt.Fprintln(w)
}

// latBounds bucket per-request latency in microseconds, 100µs to 10min
// (wait=1 submissions block for the whole simulation).
var latBounds = []uint64{
	100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
	10_000_000, 30_000_000, 60_000_000, 300_000_000, 600_000_000,
}

// latencyTracker is the client-side latency distribution: the shared
// metrics histogram (atomic — every synthetic client observes into it)
// plus an exact maximum, which a bucketed histogram cannot recover.
type latencyTracker struct {
	reg  *metrics.Registry
	hist metrics.Histogram
	max  atomic.Uint64
}

func newLatencyTracker() *latencyTracker {
	reg := metrics.NewRegistry()
	return &latencyTracker{reg: reg, hist: reg.AtomicHistogram("load/latency_us", latBounds...)}
}

func (l *latencyTracker) observe(d time.Duration) {
	us := uint64(d / time.Microsecond)
	l.hist.Observe(us)
	for {
		cur := l.max.Load()
		if us <= cur || l.max.CompareAndSwap(cur, us) {
			return
		}
	}
}

// counts reads the bucket cells back out of the registry (non-cumulative,
// overflow bucket last).
func (l *latencyTracker) counts() []uint64 {
	out := make([]uint64, 0, len(latBounds)+1)
	for _, b := range latBounds {
		v, _ := l.reg.Value(fmt.Sprintf("load/latency_us/le_%d", b))
		out = append(out, v)
	}
	v, _ := l.reg.Value("load/latency_us/inf")
	return append(out, v)
}

// quantile interpolates the q-th quantile (0..1) from the bucket counts,
// linearly within the containing bucket; the overflow bucket reports the
// exact observed maximum.
func (l *latencyTracker) quantile(counts []uint64, total uint64, q float64) uint64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum, lo uint64
	for i, c := range counts {
		if cum+c > rank {
			if i >= len(latBounds) {
				return l.max.Load()
			}
			hi := latBounds[i]
			// Position of the rank within this bucket, interpolated.
			frac := float64(rank-cum) / float64(c)
			return lo + uint64(frac*float64(hi-lo))
		}
		cum += c
		if i < len(latBounds) {
			lo = latBounds[i]
		}
	}
	return l.max.Load()
}

func fmtUS(us uint64) string {
	return fmt.Sprintf("%.1fms", float64(us)/1000)
}

// printSummary renders the per-request latency distribution table.
func (l *latencyTracker) printSummary(w io.Writer) {
	counts := l.counts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return
	}
	sum, _ := l.reg.Value("load/latency_us/sum")
	fmt.Fprintf(w, "  request latency (%d samples, mean %s):\n", total, fmtUS(sum/total))
	for _, p := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
		fmt.Fprintf(w, "    %-4s %10s\n", p.name, fmtUS(l.quantile(counts, total, p.q)))
	}
	fmt.Fprintf(w, "    %-4s %10s\n", "max", fmtUS(l.max.Load()))
}

func buildGrid(benchList, schemeList, capsList string) ([]runRequest, error) {
	benches := splitList(benchList)
	schemes := splitList(schemeList)
	if len(benches) == 0 || len(schemes) == 0 {
		return nil, fmt.Errorf("need at least one benchmark and one scheme")
	}
	caps := []int{0}
	if capsList != "" {
		caps = nil
		for _, c := range splitList(capsList) {
			n, err := strconv.Atoi(c)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad capacity %q", c)
			}
			caps = append(caps, n)
		}
	}
	var grid []runRequest
	for _, b := range benches {
		for _, s := range schemes {
			for _, c := range caps {
				grid = append(grid, runRequest{Bench: b, Scheme: s, Capacity: c})
			}
		}
	}
	return grid, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// waitForServer polls /healthz until any HTTP answer arrives (a degraded
// 503 still means the server is up).
func waitForServer(hc *http.Client, base string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := hc.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %s: %v", base, d, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// submitRun fires one wait=1 submission and classifies its outcome. A
// 429 (the server shedding load) is retried up to retries times, waiting
// out the server's Retry-After hint with jitter so a thundering herd of
// shed clients doesn't re-arrive in lockstep; every other outcome is
// terminal.
func submitRun(hc *http.Client, base, client string, req runRequest, retries int) errClass {
	body, err := json.Marshal(req)
	if err != nil {
		return clsDisconnect
	}
	for attempt := 0; ; attempt++ {
		hr, err := http.NewRequest("POST", base+"/v1/runs?wait=1", bytes.NewReader(body))
		if err != nil {
			return clsDisconnect
		}
		hr.Header.Set("Content-Type", "application/json")
		hr.Header.Set("X-Regless-Client", client)
		resp, err := hc.Do(hr)
		if err != nil {
			return classifyTransport(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return classifyTransport(err)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var st runStatus
			if err := json.Unmarshal(raw, &st); err != nil {
				return clsDisconnect
			}
			if st.Status == "done" && len(st.Result) > 0 {
				return clsOK
			}
			return clsFailed
		case resp.StatusCode == http.StatusTooManyRequests:
			if attempt >= retries {
				return clsShed
			}
			time.Sleep(backoff(resp.Header.Get("Retry-After")))
		case resp.StatusCode >= 500:
			return cls5xx
		default:
			return clsRejected
		}
	}
}

// classifyTransport splits connection failures into client-side deadline
// expiries and everything else (resets, refused connections, severed
// bodies).
func classifyTransport(err error) errClass {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return clsTimeout
	}
	return clsDisconnect
}

// backoff turns a Retry-After header (delta-seconds) into a jittered
// sleep: the full server hint plus up to half again, capped at 30s. The
// jitter spreads shed clients out so the retry wave doesn't recreate the
// overload that shed them.
func backoff(retryAfter string) time.Duration {
	secs := 1
	if n, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && n > 0 {
		secs = n
	}
	if secs > 30 {
		secs = 30
	}
	d := time.Duration(secs) * time.Second
	return d + rand.N(d/2+time.Millisecond)
}

// printTable submits the whole grid as one sweep and prints the rendered
// table — the byte-stable artifact scripts diff across passes.
func printTable(hc *http.Client, base string, grid []runRequest) error {
	benchSet, schemeSet, capSet := map[string]bool{}, map[string]bool{}, map[int]bool{}
	var benches, schemes []string
	var caps []int
	for _, g := range grid {
		if !benchSet[g.Bench] {
			benchSet[g.Bench] = true
			benches = append(benches, g.Bench)
		}
		if !schemeSet[g.Scheme] {
			schemeSet[g.Scheme] = true
			schemes = append(schemes, g.Scheme)
		}
		if !capSet[g.Capacity] {
			capSet[g.Capacity] = true
			caps = append(caps, g.Capacity)
		}
	}
	req := map[string]any{"benchmarks": benches, "schemes": schemes}
	if !(len(caps) == 1 && caps[0] == 0) {
		req["capacities"] = caps
	}
	body, _ := json.Marshal(req)
	resp, err := hc.Post(base+"/v1/sweeps?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/sweeps: %s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	var sw sweepStatus
	if err := json.Unmarshal(raw, &sw); err != nil {
		return err
	}
	if sw.Status != "done" {
		return fmt.Errorf("sweep %s finished %q", sw.ID, sw.Status)
	}
	tresp, err := hc.Get(base + "/v1/sweeps/" + sw.ID + "/table")
	if err != nil {
		return err
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET table: %s", tresp.Status)
	}
	_, err = io.Copy(os.Stdout, tresp.Body)
	return err
}

func fetchMetrics(hc *http.Client, base string) (map[string]uint64, error) {
	resp, err := hc.Get(base + "/metricsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m map[string]uint64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return m, nil
}

// printDeltas shows how the server's counters moved over the load run
// (gauges print their final value).
func printDeltas(before, after map[string]uint64) {
	names := make([]string, 0, len(after))
	for n := range after {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("  server counters (delta over run):")
	for _, n := range names {
		d := after[n] - before[n]
		if strings.HasPrefix(n, "serve/queue") || strings.HasPrefix(n, "serve/inflight") {
			fmt.Printf("    %-24s %d (now)\n", n, after[n])
			continue
		}
		if d != 0 {
			fmt.Printf("    %-24s +%d\n", n, d)
		}
	}
}
