// Command kernelinfo inspects the RegLess compiler's output for a
// benchmark or for all of them: disassembly, region boundaries, register
// classification, annotations, and metadata cost.
//
// Usage:
//
//	kernelinfo -bench lud            # full dump for one benchmark
//	kernelinfo -bench lud -asm       # disassembly only
//	kernelinfo -summary              # one summary line per benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/metadata"
	"repro/internal/regions"
)

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark to inspect")
		file    = flag.String("file", "", "assembly file to inspect instead of a benchmark")
		format  = flag.Bool("format", false, "emit the kernel in assembly format and exit")
		asmOnly = flag.Bool("asm", false, "print disassembly only")
		summary = flag.Bool("summary", false, "print one summary line per benchmark")
		maxRegs = flag.Int("max-regs", 32, "compiler: max registers per region")
		lines   = flag.Int("bank-lines", 16, "compiler: OSU lines per bank")
	)
	flag.Parse()

	cfg := regions.Config{MaxRegsPerRegion: *maxRegs, BankLines: *lines, MinRegionInsns: 6}

	if *summary {
		fmt.Printf("%-16s %5s %6s %12s %9s %9s %9s %9s\n",
			"benchmark", "regs", "insns", "insns/region", "preloads", "maxlive", "interior", "meta")
		for _, b := range kernels.Suite() {
			k := kernels.MustLoad(b.Name)
			c, err := regions.Compile(k, cfg)
			check(err)
			total, err := metadata.Apply(c)
			check(err)
			s := c.Summarize()
			fmt.Printf("%-16s %5d %6d %12.1f %9.1f %9.1f %9.2f %9d\n",
				b.Name, k.NumRegs, k.NumInsns(), s.AvgInsns, s.AvgPreloads,
				s.MeanMaxLive, s.InteriorFrac, total)
		}
		return
	}

	var k *isa.Kernel
	var err error
	switch {
	case *file != "":
		src, rerr := os.ReadFile(*file)
		check(rerr)
		k, err = asm.Parse(string(src))
	case *bench != "":
		k, err = kernels.Load(*bench)
	default:
		flag.Usage()
		os.Exit(2)
	}
	check(err)
	if *format {
		fmt.Print(asm.Format(k))
		return
	}
	fmt.Print(k.Disassemble())
	if *asmOnly {
		return
	}
	c, err := regions.Compile(k, cfg)
	check(err)
	if _, err := metadata.Apply(c); err != nil {
		check(err)
	}
	fmt.Println()
	for _, r := range c.Regions {
		fmt.Printf("region %2d  B%d[%d,%d)  maxlive=%d  meta=%d insns\n",
			r.ID, r.Block, r.Start, r.End, r.MaxLive, r.MetaInsns)
		fmt.Printf("  bank usage   %v\n", r.BankUsage)
		if len(r.Preloads) > 0 {
			fmt.Printf("  preloads    ")
			for _, p := range r.Preloads {
				if p.Invalidate {
					fmt.Printf(" %v(inv)", p.Reg)
				} else {
					fmt.Printf(" %v", p.Reg)
				}
			}
			fmt.Println()
		}
		if len(r.CacheInvalidations) > 0 {
			fmt.Printf("  cache inval  %v\n", r.CacheInvalidations)
		}
		if len(r.Interior) > 0 {
			fmt.Printf("  interior     %v\n", r.Interior)
		}
		if len(r.Outputs) > 0 {
			fmt.Printf("  outputs      %v\n", r.Outputs)
		}
		for gi, regs := range r.EraseAt {
			fmt.Printf("  erase @%d   %v\n", gi, regs)
		}
		for gi, regs := range r.EvictAt {
			fmt.Printf("  evict @%d   %v\n", gi, regs)
		}
	}
	s := c.Summarize()
	fmt.Printf("\n%d regions, %.1f insns/region, %.1f preloads/region, interior value fraction %.2f\n",
		s.NumRegions, s.AvgInsns, s.AvgPreloads, s.InteriorFrac)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
